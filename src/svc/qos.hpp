#pragma once
///
/// \file qos.hpp
/// \brief Differentiated service classes for the `src/svc/` front-end
/// (docs/service.md).
///
/// The DiffServ-style model (PAPERS.md, arXiv:1205.3319) applied to
/// inference-style session serving: every submitted job carries one of
/// three `qos_class`es — `interactive` (a user is waiting), `batch`
/// (throughput work) and `soak` (background filler) — and each class owns
/// a `class_policy`: a scheduling `weight` (its share of execution slots
/// under saturation), a `queue_cap` bounding its admission queue
/// (backpressure: a full queue sheds instead of growing without bound)
/// and an optional `deadline_seconds` after which still-queued work is
/// load-shed rather than executed late (only meaningful for interactive
/// traffic, where a result past the deadline is worthless).
///
/// `qos_config` bundles the three policies plus the `enabled` switch that
/// collapses the scheduler to the single-FIFO no-QoS baseline the
/// `ablation_service` bench compares against.
///

#include <optional>
#include <string>
#include <vector>

namespace nlh::svc {

/// Service class of one submitted job; array index into per-class state.
enum class qos_class {
  interactive = 0,  ///< latency-sensitive; a client is blocked on the result
  batch = 1,        ///< throughput work; finish soon, nobody is staring at it
  soak = 2,         ///< background filler; runs in otherwise-idle capacity
};

inline constexpr int qos_class_count = 3;

/// Stable lowercase name ("interactive" / "batch" / "soak").
const char* to_string(qos_class c);

/// Inverse of to_string; nullopt for anything else.
std::optional<qos_class> parse_qos_class(const std::string& name);

/// Per-class knobs (docs/service.md lists the tuning guidance).
struct class_policy {
  /// Relative share of execution slots under saturation (deficit
  /// scheduling: a class with weight 8 is served ~8x as often as one with
  /// weight 1 while both have work queued). Must be >= 1.
  int weight = 1;
  /// Admission-queue depth cap; a submit that would exceed it is shed
  /// immediately (bounded queues are the backpressure mechanism — an
  /// unbounded queue just converts overload into unbounded latency).
  int queue_cap = 1024;
  /// Queued work older than this is shed at dispatch time instead of run
  /// (0 = never expires). The load-shedding valve for interactive traffic:
  /// under sustained overload it is better to fail 1 job fast than to run
  /// every job seconds too late.
  double deadline_seconds = 0.0;
};

/// The three class policies plus the QoS master switch.
struct qos_config {
  class_policy interactive{/*weight=*/8, /*queue_cap=*/256,
                           /*deadline_seconds=*/2.0};
  class_policy batch{/*weight=*/3, /*queue_cap=*/1024,
                     /*deadline_seconds=*/0.0};
  class_policy soak{/*weight=*/1, /*queue_cap=*/4096,
                    /*deadline_seconds=*/0.0};
  /// false = the no-QoS ablation baseline: one FIFO queue across classes,
  /// no weights, no deadline shedding (queue caps still bound memory).
  bool enabled = true;

  const class_policy& policy(qos_class c) const;
  class_policy& policy(qos_class c);

  /// Every validation failure, one actionable message each; empty = valid.
  std::vector<std::string> validate() const;
};

}  // namespace nlh::svc

///
/// \file traffic_gen.cpp
/// \brief MMPP trace generation, checksum and open-loop replay.
///

#include "svc/traffic_gen.hpp"

#include <chrono>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "support/rng.hpp"

namespace nlh::svc {

std::vector<std::string> traffic_options::validate() const {
  std::vector<std::string> errs;
  if (arrivals < 0)
    errs.push_back("traffic_options.arrivals: must be >= 0 (got " +
                   std::to_string(arrivals) + ")");
  if (duration_seconds < 0.0)
    errs.push_back("traffic_options.duration_seconds: must be >= 0");
  if (arrivals == 0 && duration_seconds <= 0.0)
    errs.push_back(
        "traffic_options: set arrivals > 0 or duration_seconds > 0 — an "
        "empty trace generates nothing");
  if (!(mean_rate > 0.0))
    errs.push_back("traffic_options.mean_rate: must be > 0 (got " +
                   std::to_string(mean_rate) + ")");
  if (!(burst_factor >= 1.0))
    errs.push_back("traffic_options.burst_factor: must be >= 1 (1 = plain "
                   "Poisson; got " +
                   std::to_string(burst_factor) + ")");
  if (!(mean_on_seconds > 0.0) || !(mean_off_seconds > 0.0))
    errs.push_back("traffic_options.mean_on_seconds/mean_off_seconds: phase "
                   "means must be > 0");
  if (tenants < 1)
    errs.push_back("traffic_options.tenants: must be >= 1 (got " +
                   std::to_string(tenants) + ")");
  if (interactive_fraction < 0.0 || batch_fraction < 0.0 ||
      interactive_fraction + batch_fraction > 1.0)
    errs.push_back("traffic_options.interactive_fraction/batch_fraction: "
                   "must be >= 0 and sum to <= 1 (soak takes the remainder)");
  if (n < 4)
    errs.push_back("traffic_options.n: must be >= 4 (got " +
                   std::to_string(n) + ")");
  if (steps_interactive < 1 || steps_batch < 1 || steps_soak < 1)
    errs.push_back("traffic_options.steps_*: every class needs >= 1 step");
  return errs;
}

namespace {

/// Exponential sample with the given mean; 1 - U keeps log's argument > 0.
double exp_sample(support::rng& r, double mean) {
  return -mean * std::log(1.0 - r.next_double());
}

}  // namespace

std::vector<arrival> generate_traffic(const traffic_options& opt) {
  if (const auto errs = opt.validate(); !errs.empty()) {
    std::ostringstream msg;
    msg << "invalid traffic_options (" << errs.size() << " problem"
        << (errs.size() > 1 ? "s" : "") << "):";
    for (const auto& e : errs) msg << "\n  - " << e;
    throw std::invalid_argument(msg.str());
  }

  support::rng r(opt.seed);
  std::vector<arrival> trace;
  if (opt.arrivals > 0) trace.reserve(static_cast<std::size_t>(opt.arrivals));

  double t = 0.0;
  bool burst = false;  // start quiet; the first burst phase is drawn below
  double phase_end = exp_sample(r, opt.mean_off_seconds);
  std::uint64_t id = 0;

  const auto done = [&] {
    if (opt.arrivals > 0)
      return static_cast<int>(trace.size()) >= opt.arrivals;
    return t >= opt.duration_seconds;
  };

  while (!done()) {
    const double rate =
        burst ? opt.mean_rate * opt.burst_factor : opt.mean_rate;
    const double dt = exp_sample(r, 1.0 / rate);
    if (t + dt >= phase_end) {
      // Phase boundary before the next arrival: switch state and redraw
      // the interarrival at the new rate (memorylessness makes the
      // restart exact, not an approximation).
      t = phase_end;
      burst = !burst;
      phase_end =
          t + exp_sample(r, burst ? opt.mean_on_seconds : opt.mean_off_seconds);
      continue;
    }
    t += dt;
    if (opt.arrivals == 0 && t >= opt.duration_seconds) break;

    arrival a;
    a.t = t;
    a.id = id++;
    a.tenant = "tenant-" + std::to_string(r.uniform_int(0, opt.tenants - 1));
    const double u = r.next_double();
    if (u < opt.interactive_fraction)
      a.cls = qos_class::interactive;
    else if (u < opt.interactive_fraction + opt.batch_fraction)
      a.cls = qos_class::batch;
    else
      a.cls = qos_class::soak;

    a.job.options.scenario = opt.scenario;
    a.job.options.mode = api::execution_mode::serial;
    a.job.options.n = opt.n;
    a.job.options.epsilon_factor = opt.eps_factor;
    a.job.options.kernel_backend = opt.kernel_backend;
    const int steps = a.cls == qos_class::interactive ? opt.steps_interactive
                      : a.cls == qos_class::batch    ? opt.steps_batch
                                                     : opt.steps_soak;
    a.job.options.num_steps = steps;
    a.job.num_steps = steps;
    a.job.label = a.tenant + "/" + to_string(a.cls) + "/" + std::to_string(a.id);
    trace.push_back(std::move(a));
  }
  return trace;
}

std::uint64_t trace_checksum(const std::vector<arrival>& trace) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xffull;
      h *= 1099511628211ull;  // FNV prime
    }
  };
  const auto mix_str = [&h](const std::string& s) {
    for (const unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ull;
    }
  };
  for (const auto& a : trace) {
    mix(static_cast<std::uint64_t>(std::llround(a.t * 1e9)));
    mix(a.id);
    mix_str(a.tenant);
    mix(static_cast<std::uint64_t>(a.cls));
    mix(static_cast<std::uint64_t>(a.job.num_steps));
    mix(static_cast<std::uint64_t>(a.job.options.n));
    mix_str(a.job.label);
  }
  return h;
}

std::vector<amt::future<svc_result>> replay(service_loop& svc,
                                            const std::vector<arrival>& trace,
                                            double time_scale) {
  std::vector<amt::future<svc_result>> futs;
  futs.reserve(trace.size());
  const auto start = std::chrono::steady_clock::now();
  for (const auto& a : trace) {
    if (time_scale > 0.0) {
      const auto due =
          start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(a.t * time_scale));
      std::this_thread::sleep_until(due);
    }
    futs.push_back(svc.submit(a.tenant, a.cls, a.job));
  }
  return futs;
}

}  // namespace nlh::svc

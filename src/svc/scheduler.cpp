///
/// \file scheduler.cpp
/// \brief class_scheduler: deficit round-robin dispatch, deadline
/// shedding, bounded queues, graceful drain.
///

#include "svc/scheduler.hpp"

#include <chrono>
#include <limits>
#include <utility>

#include "obs/tracer.hpp"
#include "support/assert.hpp"

namespace nlh::svc {

class_scheduler::class_scheduler(scheduler_options opt, amt::thread_pool& pool,
                                 std::function<double()> clock)
    : opt_(std::move(opt)), pool_(pool), clock_(std::move(clock)) {
  NLH_ASSERT_MSG(opt_.max_concurrent >= 1,
                 "class_scheduler: max_concurrent must be >= 1");
  NLH_ASSERT_MSG(clock_ != nullptr, "class_scheduler: null clock");
}

class_scheduler::enqueue_result class_scheduler::enqueue(sched_item item) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (draining_) return enqueue_result::draining;
    const int c = static_cast<int>(item.cls);
    // The cap bounds memory in both modes; only weights/deadlines are
    // QoS-specific.
    if (static_cast<int>(queues_[c].size()) >=
        opt_.qos.policy(item.cls).queue_cap)
      return enqueue_result::queue_full;
    NLH_TRACE_INSTANT("svc/enqueue", item.seq);
    queues_[c].push_back(std::move(item));
  }
  pump();
  return enqueue_result::queued;
}

std::deque<sched_item>::iterator class_scheduler::first_ready_locked(
    qos_class c, double now) {
  auto& q = queues_[static_cast<int>(c)];
  for (auto it = q.begin(); it != q.end(); ++it)
    if (it->ready_at_s <= now) return it;
  return q.end();
}

void class_scheduler::pump_locked(std::vector<pending_shed>& sheds) {
  const double now = clock_();
  // Deadline sweep first: expired work never occupies a slot. Quota-delayed
  // items can sit behind ready ones, so the whole queue is swept, not just
  // the front.
  if (opt_.qos.enabled) {
    for (int c = 0; c < qos_class_count; ++c) {
      const auto& pol = opt_.qos.policy(static_cast<qos_class>(c));
      if (pol.deadline_seconds <= 0.0) continue;
      auto& q = queues_[c];
      for (auto it = q.begin(); it != q.end();) {
        if (now - it->enqueued_s > pol.deadline_seconds) {
          NLH_TRACE_INSTANT("svc/shed_expired", it->seq);
          sheds.push_back({std::move(it->shed), "expired"});
          shed_expired_.add();
          it = q.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  if (draining_) return;

  while (running_ < opt_.max_concurrent) {
    int pick = -1;
    std::deque<sched_item>::iterator pick_it;
    if (!opt_.qos.enabled) {
      // No-QoS baseline: one logical FIFO — the globally oldest ready item.
      std::uint64_t best_seq = std::numeric_limits<std::uint64_t>::max();
      for (int c = 0; c < qos_class_count; ++c) {
        const auto it = first_ready_locked(static_cast<qos_class>(c), now);
        if (it != queues_[c].end() && it->seq < best_seq) {
          best_seq = it->seq;
          pick = c;
          pick_it = it;
        }
      }
    } else {
      // Deficit round-robin: among backlogged-and-ready classes with credit
      // left, the largest balance wins (weight, then class order, breaks
      // ties). When every ready class is out of credit, a new round tops
      // all balances up to their weights.
      const auto choose = [&] {
        pick = -1;
        int best_credit = 0, best_weight = -1;
        for (int c = 0; c < qos_class_count; ++c) {
          if (credits_[c] < 1) continue;
          const auto it = first_ready_locked(static_cast<qos_class>(c), now);
          if (it == queues_[c].end()) continue;
          const int w = opt_.qos.policy(static_cast<qos_class>(c)).weight;
          if (pick == -1 || credits_[c] > best_credit ||
              (credits_[c] == best_credit && w > best_weight)) {
            pick = c;
            pick_it = it;
            best_credit = credits_[c];
            best_weight = w;
          }
        }
      };
      choose();
      if (pick == -1) {
        bool any_ready = false;
        for (int c = 0; c < qos_class_count && !any_ready; ++c)
          any_ready =
              first_ready_locked(static_cast<qos_class>(c), now) !=
              queues_[c].end();
        if (!any_ready) break;
        for (int c = 0; c < qos_class_count; ++c)
          credits_[c] = opt_.qos.policy(static_cast<qos_class>(c)).weight;
        ++rounds_;
        choose();
        if (pick == -1) break;  // unreachable: weights are >= 1
      }
      credits_[pick] -= 1;
    }
    if (pick == -1) break;

    sched_item item = std::move(*pick_it);
    queues_[pick].erase(pick_it);
    ++running_;
    ++served_[pick];
    NLH_TRACE_INSTANT("svc/dispatch", item.seq);
    // The task owns `run`; the epilogue frees the slot and re-pumps, so a
    // completion immediately pulls the next eligible item.
    pool_.post([this, run = std::move(item.run)]() mutable {
      run();
      on_item_done();
    });
  }
}

void class_scheduler::run_sheds(std::vector<pending_shed>& sheds) {
  for (auto& s : sheds) s.shed(s.reason);
  sheds.clear();
}

void class_scheduler::pump() {
  std::vector<pending_shed> sheds;
  {
    std::lock_guard<std::mutex> lk(mu_);
    pump_locked(sheds);
  }
  run_sheds(sheds);
  idle_cv_.notify_all();
}

void class_scheduler::on_item_done() {
  std::vector<pending_shed> sheds;
  {
    std::lock_guard<std::mutex> lk(mu_);
    --running_;
    pump_locked(sheds);
  }
  run_sheds(sheds);
  idle_cv_.notify_all();
}

void class_scheduler::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [&] {
    if (running_ > 0) return false;
    for (const auto& q : queues_)
      if (!q.empty()) return false;
    return true;
  });
}

class_scheduler::drain_report class_scheduler::drain(double timeout_s) {
  std::vector<pending_shed> sheds;
  drain_report rep;
  {
    std::unique_lock<std::mutex> lk(mu_);
    draining_ = true;
    rep.in_flight = running_;
    idle_cv_.wait_for(lk, std::chrono::duration<double>(timeout_s),
                      [&] { return running_ == 0; });
    rep.still_running = running_;
    for (auto& q : queues_) {
      for (auto& item : q) {
        NLH_TRACE_INSTANT("svc/shed_drained", item.seq);
        sheds.push_back({std::move(item.shed), "drained"});
        shed_drained_.add();
        ++rep.abandoned;
      }
      q.clear();
    }
  }
  run_sheds(sheds);
  idle_cv_.notify_all();
  return rep;
}

bool class_scheduler::draining() const {
  std::lock_guard<std::mutex> lk(mu_);
  return draining_;
}

int class_scheduler::queue_depth(qos_class c) const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int>(queues_[static_cast<int>(c)].size());
}

int class_scheduler::running() const {
  std::lock_guard<std::mutex> lk(mu_);
  return running_;
}

std::uint64_t class_scheduler::served(qos_class c) const {
  std::lock_guard<std::mutex> lk(mu_);
  return served_[static_cast<int>(c)];
}

std::uint64_t class_scheduler::shed_expired() const {
  return shed_expired_.value();
}

std::uint64_t class_scheduler::shed_drained() const {
  return shed_drained_.value();
}

std::uint64_t class_scheduler::rounds() const {
  std::lock_guard<std::mutex> lk(mu_);
  return rounds_;
}

void class_scheduler::metrics_into(obs::metrics_snapshot& snap) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (int c = 0; c < qos_class_count; ++c) {
    const std::string cls = to_string(static_cast<qos_class>(c));
    snap.add_gauge("svc/sched/queue_depth/" + cls,
                   static_cast<double>(queues_[c].size()));
    snap.add_counter("svc/sched/served/" + cls, served_[c]);
  }
  snap.add_counter("svc/sched/shed_expired", shed_expired_.value());
  snap.add_counter("svc/sched/shed_drained", shed_drained_.value());
  snap.add_counter("svc/sched/rounds", rounds_);
  snap.add_gauge("svc/sched/running", static_cast<double>(running_));
}

}  // namespace nlh::svc

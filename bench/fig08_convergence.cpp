///
/// \file fig08_convergence.cpp
/// \brief Reproduces paper Fig. 8: total error e = sum_k e_k (eq. 7) and
/// maximum relative error of the solver against the manufactured solution
/// for mesh sizes h = 1/2^n, n = 2..6.
///
/// The paper's expectation is a monotone decrease of the error with the
/// mesh size; absolute values differ (our source is manufactured at the
/// semi-discrete level, isolating the forward-Euler error — see DESIGN.md).
///

#include <iostream>

#include "nonlocal/serial_solver.hpp"
#include "support/table.hpp"

int main() {
  std::cout << "Fig. 8 — validation: error vs mesh size h = 1/2^n, n = 2..6\n"
            << "(epsilon = 2h, 20 timesteps, forward Euler at half the "
               "stability bound)\n\n";

  nlh::support::table tab(
      {"n", "mesh", "h", "dt", "total error e", "max-rel-error"});
  double prev_e = -1.0;
  bool monotone = true;
  for (int exp2 = 2; exp2 <= 6; ++exp2) {
    const int n = 1 << exp2;
    nlh::nonlocal::solver_config cfg;
    cfg.n = n;
    cfg.epsilon_factor = 2;
    cfg.num_steps = 20;
    nlh::nonlocal::serial_solver solver(cfg);
    const auto res = solver.run();
    tab.row()
        .add(exp2)
        .add(std::to_string(n) + "x" + std::to_string(n))
        .add(1.0 / n, 4)
        .add(res.dt, 3)
        .add(res.total_error_e, 4)
        .add(res.max_relative_error, 4);
    if (prev_e >= 0.0 && res.total_error_e > prev_e) monotone = false;
    prev_e = res.total_error_e;
  }
  tab.print(std::cout);
  std::cout << "\nPaper expectation: error decreases with h. Reproduced: "
            << (monotone ? "YES (monotone decrease)" : "NO") << "\n";
  return monotone ? 0 : 1;
}

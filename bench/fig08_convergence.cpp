///
/// \file fig08_convergence.cpp
/// \brief Reproduces paper Fig. 8: total error e = sum_k e_k (eq. 7) and
/// maximum relative error of the solver against the manufactured solution
/// for mesh sizes h = 1/2^n, n = 2..6 — driven entirely through the
/// `nlh::api::session` facade, with the per-step error accumulated by the
/// solver_handle's observer callback.
///
/// The paper's expectation is a monotone decrease of the error with the
/// mesh size; absolute values differ (our source is manufactured at the
/// semi-discrete level, isolating the forward-Euler error — see DESIGN.md).
///
/// Usage: fig08_convergence [--steps 20] [--eps-factor 2] [--dt-safety 0.5]
///

#include <iostream>

#include "api/session.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  const nlh::support::cli cli(argc, argv);
  const int steps = cli.get_int("steps", 20);
  const int eps_factor = cli.get_int("eps-factor", 2);
  const double dt_safety = cli.get_double("dt-safety", 0.5);

  std::cout << "Fig. 8 — validation: error vs mesh size h = 1/2^n, n = 2..6\n"
            << "(epsilon = " << eps_factor << "h, " << steps
            << " timesteps, forward Euler at " << dt_safety
            << " of the stability bound)\n\n";

  nlh::support::table tab(
      {"n", "mesh", "h", "dt", "total error e", "max-rel-error"});
  double prev_e = -1.0;
  bool monotone = true;
  for (int exp2 = 2; exp2 <= 6; ++exp2) {
    const int n = 1 << exp2;
    nlh::api::session_options opt;
    opt.scenario = "manufactured";
    opt.mode = nlh::api::execution_mode::serial;
    opt.n = n;
    opt.epsilon_factor = eps_factor;
    opt.num_steps = steps;
    opt.dt_safety = dt_safety;
    nlh::api::session session(opt);
    auto& solver = session.solver();

    // e = sum_k e_k, accumulated step by step through the observer.
    double total_e = 0.0;
    solver.set_observer(
        [&](const nlh::api::step_event&) { total_e += solver.error_ek_vs_exact(); });
    solver.run(steps);

    tab.row()
        .add(exp2)
        .add(std::to_string(n) + "x" + std::to_string(n))
        .add(1.0 / n, 4)
        .add(solver.dt(), 3)
        .add(total_e, 4)
        .add(solver.error_vs_exact(), 4);
    if (prev_e >= 0.0 && total_e > prev_e) monotone = false;
    prev_e = total_e;
  }
  tab.print(std::cout);
  std::cout << "\nPaper expectation: error decreases with h. Reproduced: "
            << (monotone ? "YES (monotone decrease)" : "NO") << "\n";
  return monotone ? 0 : 1;
}

///
/// \file ablation_dynamic_crack.cpp
/// \brief Live auto-rebalancing gate (docs/balance.md) on the *real*
/// distributed solver — the end-to-end successor of the sim-driver study
/// this bench started as.
///
/// 1. dynamic_crack: a crack front sweeps left -> right across the domain,
///    progressively cheapening the DPs it crosses, so the work concentrates
///    on the ever-narrower uncracked right side. The same run executes
///    twice — static block partition vs `dist_config::rebalance` enabled —
///    and the gate demands the auto-rebalanced run beat the static
///    partition by >= 1.10x on the *measured critical path* (per window,
///    the max over localities of measured busy seconds; summed over the
///    run) while staying bitwise identical to it. The critical path is the
///    wall-clock of the run on a cluster with a core per locality; raw
///    wall-clock is reported too, but not gated — a CI box that timeshares
///    four localities onto one or two cores serializes both partitions to
///    the same total work, so wall there measures the machine, not the
///    balancer.
/// 2. fig14_live: the paper's Fig. 14 validation on the live loop — a
///    highly imbalanced start (node 0 owns all but three corner SDs) must
///    converge to a nearly balanced ownership within 3 moving epochs. The
///    busy sampler is the symmetric-node work model (busy proportional to
///    owned SDs) so the per-epoch convergence gate is deterministic on any
///    CI box; the dynamic_crack section above keeps the default *measured*
///    sampler as the end-to-end proof.
///
/// Writes BENCH_balance.json (NLH_BENCH_BALANCE_JSON overrides the path)
/// and exits non-zero unless every gate holds; CI runs it as a Release
/// smoke step and uploads the report.
///

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "api/scenario.hpp"
#include "balance/auto_rebalancer.hpp"
#include "bench_common.hpp"
#include "dist/dist_solver.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace nlh;

/// The crack-front position (x coordinate) at simulated time step `k` of
/// `total`: sweeps 0 -> 0.9 over the run, so the right strip stays
/// uncracked (heavy) to the end. Pure function of the step index — both
/// runs and every locality agree on it exactly.
double front_at(int k, int total) {
  return 0.9 * static_cast<double>(k) / static_cast<double>(total);
}

/// Deterministic compute-heavy scenario: DPs ahead of the crack front
/// (uncracked material) burn `heavy_iters` of transcendental work per
/// source evaluation; DPs behind it are cracked and nearly free. The
/// source value is a pure function of (t, x, y), so two runs with
/// different ownership histories produce bitwise-identical fields.
class dynamic_crack_scenario final : public api::scenario {
 public:
  dynamic_crack_scenario(int heavy_iters, int cheap_iters, double dt, int steps)
      : heavy_(heavy_iters), cheap_(cheap_iters), dt_(dt), steps_(steps) {}

  std::string name() const override { return "bench_dynamic_crack"; }

  double initial(double x1, double x2) const override {
    return std::sin(3.14159265358979323846 * x1) *
           std::sin(3.14159265358979323846 * x2);
  }

  void source_into(const api::scenario_context& ctx, double t,
                   const std::vector<double>&, const nonlocal::dp_rect& rect,
                   std::vector<double>& out) const override {
    const auto& g = *ctx.grid;
    const int step = dt_ > 0.0 ? static_cast<int>(std::lround(t / dt_)) : 0;
    const double front = front_at(step, steps_);
    for (int i = rect.row_begin; i < rect.row_end; ++i)
      for (int j = rect.col_begin; j < rect.col_end; ++j) {
        const double x = g.x(j);
        const double y = g.y(i);
        const int iters = x >= front ? heavy_ : cheap_;
        // Convergent series: bounded, not optimizable away, identical
        // whichever locality computes it. The sin argument stays in
        // [0, ~2.5] so per-iteration cost is uniform in x (no libm
        // range-reduction skew) — heavy DPs all cost the same.
        double acc = 0.0;
        for (int k = 1; k <= iters; ++k)
          acc += std::sin(x + y + 1e-3 * k) / (static_cast<double>(k) * k);
        out[g.flat(i, j)] = 1e-3 * acc;
      }
  }

 private:
  int heavy_;
  int cheap_;
  double dt_;
  int steps_;
};

struct crack_run {
  double seconds = 0.0;   ///< raw wall-clock (reported, not gated)
  double makespan = 0.0;  ///< sum over windows of max-locality busy seconds
  std::vector<double> field;
  balance::rebalance_stats stats;
  std::uint64_t plan_compiles = 0;
};

crack_run run_crack(bool rebalance, int sd_grid, int sd_size, int nodes,
                    int steps, int heavy_iters) {
  dist::dist_config cfg;
  cfg.sd_rows = cfg.sd_cols = sd_grid;
  cfg.sd_size = sd_size;
  cfg.epsilon_factor = 2;
  cfg.threads_per_locality = 1;
  const int window = 4;  // measurement window (steps) for both runs
  if (rebalance) {
    cfg.rebalance.enabled = true;
    cfg.rebalance.interval = window;
    cfg.rebalance.trigger = 1.0;  // act on >= 1 SD of imbalance
    cfg.rebalance.cooldown = 0;   // the crack moves every window; track it
  }
  const dist::tiling t(sd_grid, sd_grid, sd_size, 2);

  dist::dist_solver solver(cfg, bench::block_ownership(t, nodes));
  auto scn = std::make_shared<const dynamic_crack_scenario>(
      heavy_iters, heavy_iters / 20, solver.dt(), steps);
  // Rebuild with the scenario now that dt is known (dt depends only on the
  // discretization, not the scenario).
  dist::dist_solver run_solver(cfg, bench::block_ownership(t, nodes), scn);
  run_solver.set_initial_condition();
  run_solver.reset_busy_counters();

  // Both runs accumulate the same observable over the same 4-step windows:
  // the window's critical path, max over localities of measured busy
  // seconds. The rebalanced run reads it inside its sampler — the one spot
  // that sees the counters after a full window and before the rebalancer
  // resets them; the static run (no rebalancer) windows the loop manually.
  //
  // The sampler *returns* the crack work model (per-SD heavy/cheap DP
  // columns at the current front), not the measured seconds: on an
  // oversubscribed box the measured split between localities is scheduler
  // noise, and noise-driven migrations make the run — moves, ownership
  // history, even whether rebalancing helps — different every time. The
  // model keeps Algorithm 1's decisions deterministic while the *metric*
  // (critical path) stays honestly measured.
  crack_run r;
  support::stopwatch sw;
  if (rebalance) {
    int windows_done = 0;
    run_solver.rebalancer()->set_sampler(
        [&r, &windows_done, nodes, steps, window](const dist::dist_solver& s) {
          double critical = 0.0;
          for (int l = 0; l < nodes; ++l)
            critical = std::max(critical, s.busy_seconds(l));
          r.makespan += critical;

          ++windows_done;
          const auto& t = s.sd_tiling();
          const auto& g = s.grid();
          const double front = front_at(windows_done * window, steps);
          std::vector<double> busy(static_cast<std::size_t>(nodes), 0.0);
          for (int sd = 0; sd < t.num_sds(); ++sd) {
            double cost = 0.0;
            for (int j = t.origin_col(sd); j < t.origin_col(sd) + t.sd_size();
                 ++j)
              cost += g.x(j) >= front ? 1.0 : 1.0 / 20.0;
            busy[static_cast<std::size_t>(s.owners().owner(sd))] += cost;
          }
          return busy;  // Algorithm 1 only uses ratios; any scale works.
        });
    run_solver.run(steps);
  } else {
    for (int done = 0; done < steps; done += window) {
      run_solver.run(window);
      double critical = 0.0;
      for (int l = 0; l < nodes; ++l)
        critical = std::max(critical, run_solver.busy_seconds(l));
      r.makespan += critical;
      run_solver.reset_busy_counters();
    }
  }
  r.seconds = sw.elapsed_s();
  r.field = run_solver.gather();
  r.stats = run_solver.rebalance_stats();
  r.plan_compiles = run_solver.plan_compiles();
  return r;
}

}  // namespace

int main() {
  // ---------------------------------------------------- 1. dynamic crack ---
  const int sd_grid = 8, sd_size = 8, nodes = 4, steps = 48;
  const int heavy_iters = 1500;
  const double gate_speedup = 1.10;

  std::cout << "Dynamic crack on the real dist_solver: " << sd_grid << "x"
            << sd_grid << " SDs (" << sd_size << "^2 DPs each) on " << nodes
            << " localities, " << steps
            << " steps; a crack sweeps left->right cheapening crossed DPs "
               "20x.\n\n";

  const auto stat = run_crack(false, sd_grid, sd_size, nodes, steps, heavy_iters);
  const auto reb = run_crack(true, sd_grid, sd_size, nodes, steps, heavy_iters);

  bool bitwise = stat.field.size() == reb.field.size();
  for (std::size_t i = 0; bitwise && i < stat.field.size(); ++i)
    bitwise = stat.field[i] == reb.field[i];

  const double speedup = stat.makespan / reb.makespan;
  const bool crack_pass = bitwise && reb.stats.moves > 0 &&
                          speedup >= gate_speedup;

  std::printf("  static    : critical path %.3f s, wall %.3f s  (plan "
              "compiles: %llu)\n",
              stat.makespan, stat.seconds,
              static_cast<unsigned long long>(stat.plan_compiles));
  std::printf("  rebalanced: critical path %.3f s, wall %.3f s  (epochs: "
              "%llu, moves: %llu, plan compiles: %llu)\n",
              reb.makespan, reb.seconds,
              static_cast<unsigned long long>(reb.stats.epochs),
              static_cast<unsigned long long>(reb.stats.moves),
              static_cast<unsigned long long>(reb.plan_compiles));
  std::printf("  critical-path speedup: %.3fx (gate >= %.2fx)   bitwise "
              "equal: %s\n\n",
              speedup, gate_speedup, bitwise ? "YES" : "NO");

  // ------------------------------------------------------- 2. fig14 live ---
  // The Fig. 14 start on the live loop: 5x5 SDs, 4 localities, node 0 owns
  // all but three corner SDs. Uniform work per SD, so per-locality busy
  // time is proportional to owned SDs — which the injected sampler below
  // states exactly. (Wall-clock busy measurement is the default sampler,
  // but on an oversubscribed CI box — this container has a single core for
  // four pools — measured fractions are scheduling noise worth several SDs
  // of apparent imbalance, useless for a per-epoch convergence gate. The
  // dynamic_crack section keeps the measured path honest via its aggregate
  // wall-clock gate, which averages that noise away.)
  const int f_steps = 24;
  dist::dist_config fcfg;
  fcfg.sd_rows = fcfg.sd_cols = 5;
  fcfg.sd_size = 8;
  fcfg.epsilon_factor = 2;
  fcfg.threads_per_locality = 1;
  fcfg.rebalance.enabled = true;
  fcfg.rebalance.interval = 4;
  // With the exact work model the loop must act on the genuine 18-SD skew
  // and go quiet once nearly balanced (residual |imbalance| <= 0.75 SDs).
  fcfg.rebalance.trigger = 1.0;
  fcfg.rebalance.deadband = 0.5;
  fcfg.rebalance.cooldown = 0;
  const dist::tiling ft(5, 5, 8, 2);
  std::vector<int> fowner(25, 0);
  fowner[static_cast<std::size_t>(ft.sd_at(0, 4))] = 1;
  fowner[static_cast<std::size_t>(ft.sd_at(4, 0))] = 2;
  fowner[static_cast<std::size_t>(ft.sd_at(4, 4))] = 3;

  dist::dist_solver fsolver(
      fcfg, dist::ownership_map(ft, 4, fowner),
      std::make_shared<const dynamic_crack_scenario>(600, 600, 0.0, f_steps));
  fsolver.set_initial_condition();
  fsolver.reset_busy_counters();

  // Symmetric-node work model: busy time proportional to owned SDs (the
  // Fig. 14 premise — homogeneous cluster, uniform SD cost). Deterministic,
  // so the "<= 3 moving epochs" gate cannot flake on a loaded runner.
  fsolver.rebalancer()->set_sampler([](const dist::dist_solver& s) {
    const auto counts = s.owners().sd_counts();
    std::vector<double> busy;
    busy.reserve(counts.size());
    for (int c : counts) busy.push_back(0.02 * std::max(c, 1));
    return busy;
  });

  std::uint64_t moving_epochs = 0;
  double first_imbalance = -1.0;
  fsolver.rebalancer()->set_epoch_observer(
      [&](const balance::balance_report& rep) {
        if (!rep.moves.empty()) ++moving_epochs;
        if (first_imbalance < 0.0) {
          for (double v : rep.imbalance)
            first_imbalance = std::max(first_imbalance, std::abs(v));
        }
      });
  fsolver.run(f_steps);

  const auto fstats = fsolver.rebalance_stats();
  const auto fcounts = fsolver.owners().sd_counts();
  const int cmin = *std::min_element(fcounts.begin(), fcounts.end());
  const int cmax = *std::max_element(fcounts.begin(), fcounts.end());
  // "Nearly balanced": 25 SDs over 4 nodes -> ideal 6.25; accept 4..9.
  const bool f_balanced = cmin >= 4 && cmax <= 9;
  const bool f_pass = f_balanced && moving_epochs >= 1 && moving_epochs <= 3 &&
                      fstats.last_imbalance_after < first_imbalance;

  std::string fcounts_s;
  for (std::size_t i = 0; i < fcounts.size(); ++i)
    fcounts_s += (i ? "/" : "") + std::to_string(fcounts[i]);
  std::printf("Fig. 14 live: 22/1/1/1 SD start -> %s after %llu moving "
              "epoch(s); imbalance %.2f -> %.2f SDs\n",
              fcounts_s.c_str(), static_cast<unsigned long long>(moving_epochs),
              first_imbalance, fstats.last_imbalance_after);
  std::printf("  balanced within 3 epochs: %s\n\n", f_pass ? "YES" : "NO");

  // ------------------------------------------------------------ report -----
  const bool pass = crack_pass && f_pass;
  const char* env = std::getenv("NLH_BENCH_BALANCE_JSON");
  const char* path = env ? env : "BENCH_balance.json";
  std::FILE* fp = std::fopen(path, "w");
  if (!fp) {
    std::fprintf(stderr, "balance gate: cannot open %s\n", path);
    return 1;
  }
  std::string counts_json = "[";
  for (std::size_t i = 0; i < fcounts.size(); ++i)
    counts_json += (i ? "," : "") + std::to_string(fcounts[i]);
  counts_json += "]";
  std::fprintf(
      fp,
      "{\n"
      "  \"bench\": \"ablation_dynamic_crack\",\n"
      "  \"config\": {\"sd_grid\": %d, \"sd_size\": %d, \"nodes\": %d, "
      "\"steps\": %d, \"heavy_iters\": %d},\n"
      "  \"gate\": \"rebalanced critical path >= %.2fx shorter than static, "
      "bitwise equal; fig14_live nearly balanced within 3 moving epochs\",\n"
      "  \"pass\": %s,\n"
      "  \"dynamic_crack\": {\"static_critical_path_s\": %.4f, "
      "\"rebalanced_critical_path_s\": %.4f, \"speedup\": %.3f, "
      "\"static_wall_s\": %.4f, \"rebalanced_wall_s\": %.4f, "
      "\"epochs\": %llu, \"moves\": %llu, "
      "\"plan_compiles\": %llu, \"bitwise_equal\": %s},\n"
      "  \"fig14_live\": {\"moving_epochs\": %llu, \"moves\": %llu, "
      "\"imbalance_before\": %.3f, \"imbalance_after\": %.3f, "
      "\"sd_counts\": %s, \"balanced\": %s}\n"
      "}\n",
      sd_grid, sd_size, nodes, steps, heavy_iters, gate_speedup,
      pass ? "true" : "false", stat.makespan, reb.makespan, speedup,
      stat.seconds, reb.seconds,
      static_cast<unsigned long long>(reb.stats.epochs),
      static_cast<unsigned long long>(reb.stats.moves),
      static_cast<unsigned long long>(reb.plan_compiles),
      bitwise ? "true" : "false",
      static_cast<unsigned long long>(moving_epochs),
      static_cast<unsigned long long>(fstats.moves), first_imbalance,
      fstats.last_imbalance_after, counts_json.c_str(),
      f_balanced ? "true" : "false");
  std::fclose(fp);

  std::cout << "Takeaway: the live Algorithm 1 loop tracks the moving crack "
               "— as crossed SDs cheapen,\nbusy-time sampling shifts them "
               "toward the idle localities, so the cluster keeps all\npools "
               "busy where the static partition leaves the cracked side "
               "idle (docs/balance.md).\n"
            << "\n  gate " << (pass ? "PASS" : "FAIL") << " -> " << path
            << "\n";
  return pass ? 0 : 1;
}

///
/// \file ablation_dynamic_crack.cpp
/// \brief Dynamic workload study (the fracture scenario motivating §7): a
/// crack grows across the domain over time, progressively cheapening the
/// SDs it crosses. Compares periodic Algorithm-1 rebalancing against a
/// static partition on per-interval makespan and busy-time imbalance.
///

#include <iostream>

#include "balance/sim_driver.hpp"
#include "bench_common.hpp"
#include "model/capacity.hpp"
#include "model/crack.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace nlh;
  const int sd_grid = 10;
  const int nodes = 4;
  const int iterations = 10;
  const double reduction = 0.7;
  const dist::tiling t(sd_grid, sd_grid, 50, 8);
  const double sec_per_dp = bench::measure_seconds_per_dp(8);

  // Diagonal crack growing from the NW corner to the SE corner over the
  // first 8 iterations.
  const model::crack_line full{0.02, 0.02, 0.98, 0.98};
  auto crack_scale_at = [&](int iteration) {
    const auto c = model::crack_at_time(full, static_cast<double>(iteration), 8.0);
    return model::crack_work_scale(t, c, reduction);
  };

  std::cout << "Dynamic crack: 10x10 SDs on 4 nodes; a diagonal crack grows "
               "over 8 intervals,\ncracked SDs do "
            << (1.0 - reduction) * 100 << "% of normal work.\n\n";

  // --- with periodic rebalancing -----------------------------------------
  auto own_bal = bench::block_ownership(t, nodes);
  balance::sim_balance_config cfg;
  cfg.cost = bench::dp_cost_model();
  cfg.cluster = bench::skylake_cluster(1, sec_per_dp);
  bench::set_uniform_speed(cfg.cluster, nodes, sec_per_dp);
  cfg.steps_per_iteration = 5;
  cfg.max_iterations = iterations;
  cfg.cov_tol = 0.02;
  cfg.run_all_iterations = true;
  cfg.on_iteration = [&](int it, dist::sim_cost_model& cost,
                         dist::sim_cluster_config&) {
    cost.sd_work_scale = crack_scale_at(it);
  };
  const auto log_bal = balance::run_sim_balancing(t, own_bal, cfg);

  // --- static baseline ----------------------------------------------------
  auto own_static = bench::block_ownership(t, nodes);
  std::vector<double> static_cov(static_cast<std::size_t>(iterations));
  std::vector<double> static_makespan(static_cast<std::size_t>(iterations));
  for (int it = 0; it < iterations; ++it) {
    auto cost = bench::dp_cost_model();
    cost.sd_work_scale = crack_scale_at(it);
    const auto run = dist::simulate_timestepping(t, own_static,
                                                 cfg.steps_per_iteration, cost,
                                                 cfg.cluster);
    static_cov[static_cast<std::size_t>(it)] =
        support::imbalance_cov(run.node_busy_fraction);
    static_makespan[static_cast<std::size_t>(it)] = run.makespan;
  }

  support::table tab({"interval", "cracked SDs", "cov static", "cov balanced",
                      "makespan static", "makespan balanced", "SDs moved"});
  double sum_static = 0.0, sum_bal = 0.0;
  for (int it = 0; it < iterations && it < static_cast<int>(log_bal.size()); ++it) {
    const auto& e = log_bal[static_cast<std::size_t>(it)];
    int cracked = 0;
    for (double s : crack_scale_at(it)) cracked += s < 1.0;
    tab.row()
        .add(it)
        .add(cracked)
        .add(static_cov[static_cast<std::size_t>(it)], 3)
        .add(e.busy_cov, 3)
        .add(static_makespan[static_cast<std::size_t>(it)], 4)
        .add(e.makespan, 4)
        .add(e.sds_moved);
    sum_static += static_makespan[static_cast<std::size_t>(it)];
    sum_bal += e.makespan;
  }
  tab.print(std::cout);
  std::cout << "\nTotal time-to-solution: static " << support::fmt_double(sum_static, 4)
            << " s, balanced " << support::fmt_double(sum_bal, 4) << " s ("
            << support::fmt_double((sum_static / sum_bal - 1.0) * 100.0, 3)
            << "% faster with Algorithm 1 tracking the crack).\n";
  return 0;
}

///
/// \file fig11_strong_dist.cpp
/// \brief Reproduces paper Fig. 11: strong scaling of the distributed
/// solver. Fixed 400x400 mesh, epsilon = 8h, 20 steps; SD grids 1x1 / 2x2 /
/// 4x4 / 8x8 distributed over 1 / 2 / 4 compute nodes with the paper's
/// explicit layout (halves / quadrants). Ghost strips crossing node
/// boundaries pay latency + bandwidth on the modeled interconnect.
///

#include <iostream>

#include "bench_common.hpp"
#include "support/table.hpp"

int main() {
  using namespace nlh;
  const int mesh = 400;
  const int eps_factor = 8;
  const int steps = 20;
  const double sec_per_dp = bench::measure_seconds_per_dp(eps_factor);

  std::cout << "Fig. 11 — strong scaling, distributed\n"
            << "mesh 400x400, epsilon = 8h, 20 steps, nodes own block "
               "halves/quadrants; kernel: "
            << sec_per_dp * 1e9 << " ns/DP-update\n\n";

  support::table tab({"#SDs", "SD size", "T(1 node) s", "speedup 1N",
                      "speedup 2N", "speedup 4N", "ghost MiB (4N)"});
  for (int grid : {1, 2, 4, 8}) {
    const int sd_size = mesh / grid;
    const dist::tiling t(grid, grid, sd_size, eps_factor);
    const auto cost = bench::dp_cost_model();
    double t1 = 0.0;
    std::vector<double> speedups;
    double ghost_mib_4n = 0.0;
    for (int nodes : {1, 2, 4}) {
      if (nodes > t.num_sds()) {  // cannot split 1 SD over several nodes
        speedups.push_back(1.0);
        continue;
      }
      auto cluster = bench::skylake_cluster(1, sec_per_dp);
      bench::set_uniform_speed(cluster, nodes, sec_per_dp);
      const auto own = bench::block_ownership(t, nodes);
      const auto res = dist::simulate_timestepping(t, own, steps, cost, cluster);
      if (nodes == 1) t1 = res.makespan;
      speedups.push_back(t1 / res.makespan);
      if (nodes == 4) ghost_mib_4n = res.network_bytes / (1024.0 * 1024.0);
    }
    auto& row = tab.row()
                    .add(grid * grid)
                    .add(std::to_string(sd_size) + "x" + std::to_string(sd_size))
                    .add(t1, 4);
    for (double s : speedups) row.add(s, 3);
    row.add(ghost_mib_4n, 4);
  }
  tab.print(std::cout);
  std::cout << "\nPaper shape: a single SD cannot be distributed; with 4+ SDs "
               "per node the speedup\ngrows linearly with the node count "
               "(slight loss from ghost exchange).\n";
  return 0;
}

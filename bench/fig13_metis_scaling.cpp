///
/// \file fig13_metis_scaling.cpp
/// \brief Reproduces paper Fig. 13: distributed scaling with METIS-style
/// partitioning. Fixed 800x800 mesh tiled into 16x16 SDs of 50x50 DPs,
/// epsilon = 8h, 20 timesteps; node count sweeps 1..16 with the multilevel
/// partitioner distributing SDs. Reports measured speedup against the
/// optimal (linear) line, plus the growing ghost traffic responsible for
/// the deviation at higher node counts.
///

#include <iostream>

#include "bench_common.hpp"
#include "support/table.hpp"

int main() {
  using namespace nlh;
  const int sd_grid = 16;
  const int sd_size = 50;
  const int eps_factor = 8;
  const int steps = 20;
  const double sec_per_dp = bench::measure_seconds_per_dp(eps_factor);

  std::cout << "Fig. 13 — distributed scaling with METIS-style partitioning\n"
            << "mesh 800x800, 16x16 SDs of 50x50, epsilon = 8h, 20 steps; "
               "kernel: "
            << sec_per_dp * 1e9 << " ns/DP-update\n\n";

  const dist::tiling t(sd_grid, sd_grid, sd_size, eps_factor);
  const auto cost = bench::dp_cost_model();

  double t1 = 0.0;
  support::table tab({"nodes", "makespan s", "speedup", "optimal",
                      "efficiency", "ghost MiB", "cut msgs"});
  bool shape_ok = true;
  for (int nodes = 1; nodes <= 16; ++nodes) {
    auto cluster = bench::skylake_cluster(1, sec_per_dp);
    bench::set_uniform_speed(cluster, nodes, sec_per_dp);
    const auto own = bench::metis_ownership(t, nodes);
    const auto res = dist::simulate_timestepping(t, own, steps, cost, cluster);
    if (nodes == 1) t1 = res.makespan;
    const double speedup = t1 / res.makespan;
    const double efficiency = speedup / nodes;
    tab.row()
        .add(nodes)
        .add(res.makespan, 4)
        .add(speedup, 4)
        .add(static_cast<double>(nodes), 3)
        .add(efficiency, 3)
        .add(res.network_bytes / (1024.0 * 1024.0), 4)
        .add(static_cast<long long>(res.network_messages));
    if (efficiency < 0.6) shape_ok = false;
  }
  tab.print(std::cout);
  std::cout << "\nPaper shape: near-linear speedup with a slight deviation as "
               "the number of boundary\nSDs (and hence ghost exchange) grows "
               "with the node count. Reproduced: "
            << (shape_ok ? "YES" : "NO") << "\n";
  return shape_ok ? 0 : 1;
}

///
/// \file micro_kernel.cpp
/// \brief google-benchmark microbenchmarks of the nonlocal kernel — DP-update
/// throughput vs horizon factor, SD size, influence function and backend —
/// plus a self-contained guard pass that measures the scalar / row_run /
/// simd / avx512 backends head-to-head and writes BENCH_kernel.json.
///
/// The guard is the regression fence for two ROADMAP items. The relative
/// pass ("SIMD stencil kernel") requires the best vectorized backend to
/// sustain >= 1.5x the scalar entry-list throughput at every epsilon factor
/// >= 4. The blocked pass ("Cache-blocked kernels for large stencils")
/// gates absolute MDPS and the blocked-vs-unblocked paired ratio in the
/// large-stencil regime (eps >= 8) on a grid big enough that the input
/// window leaves L1d. The process exits non-zero unless both fences hold.
/// Set NLH_BENCH_KERNEL_JSON to redirect the report (default:
/// ./BENCH_kernel.json).
///

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "nonlocal/grid2d.hpp"
#include "nonlocal/influence.hpp"
#include "nonlocal/kernel/backend.hpp"
#include "nonlocal/kernel/stencil_plan.hpp"
#include "nonlocal/nonlocal_operator.hpp"
#include "nonlocal/problem.hpp"
#include "nonlocal/stencil.hpp"
#include "support/stopwatch.hpp"

namespace nl = nlh::nonlocal;

static void BM_KernelVsEpsilon(benchmark::State& state) {
  const int eps_factor = static_cast<int>(state.range(0));
  const int n = 64;
  nl::grid2d grid(n, static_cast<double>(eps_factor) / n);
  nl::influence J;
  nl::stencil st(grid, J);
  nl::stencil_plan plan(st);
  auto u = grid.make_field();
  auto out = grid.make_field();
  for (std::size_t i = 0; i < u.size(); ++i) u[i] = 1e-3 * static_cast<double>(i % 101);
  const nl::dp_rect all{0, n, 0, n};
  for (auto _ : state) {
    nl::apply_nonlocal_operator(grid, plan, 1.0, u, out, all);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
  state.counters["stencil_size"] = static_cast<double>(st.size());
}
BENCHMARK(BM_KernelVsEpsilon)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

/// Head-to-head backend comparison at a fixed horizon: range(0) is the
/// epsilon factor, range(1) the kernel_backend enum value.
static void BM_KernelBackends(benchmark::State& state) {
  const int eps_factor = static_cast<int>(state.range(0));
  const auto backend = static_cast<nl::kernel_backend>(state.range(1));
  const int n = 96;
  nl::grid2d grid(n, static_cast<double>(eps_factor) / n);
  nl::influence J;
  nl::stencil st(grid, J);
  nl::stencil_plan plan(st);
  auto u = grid.make_field();
  auto out = grid.make_field();
  for (std::size_t i = 0; i < u.size(); ++i) u[i] = 1e-3 * static_cast<double>(i % 101);
  const nl::dp_rect all{0, n, 0, n};
  for (auto _ : state) {
    nl::apply_nonlocal_operator_raw(u.data(), out.data(), grid.stride(), grid.ghost(),
                                    plan, 1.0, all, backend);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
  state.SetLabel(nl::kernel_backend_name(backend));
}
BENCHMARK(BM_KernelBackends)
    ->ArgsProduct({{2, 4, 8, 16},
                   {static_cast<long>(nl::kernel_backend::scalar),
                    static_cast<long>(nl::kernel_backend::row_run),
                    static_cast<long>(nl::kernel_backend::simd),
                    static_cast<long>(nl::kernel_backend::avx512)}});

static void BM_KernelVsBlockSize(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  nl::grid2d grid(n, 4.0 / n);
  nl::influence J;
  nl::stencil st(grid, J);
  nl::stencil_plan plan(st);
  auto u = grid.make_field();
  auto out = grid.make_field();
  const nl::dp_rect all{0, n, 0, n};
  for (auto _ : state) {
    nl::apply_nonlocal_operator(grid, plan, 1.0, u, out, all);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_KernelVsBlockSize)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

static void BM_KernelInfluenceKinds(benchmark::State& state) {
  const auto kind = static_cast<nl::influence_kind>(state.range(0));
  const int n = 64;
  nl::grid2d grid(n, 4.0 / n);
  nl::influence J(kind);
  nl::stencil st(grid, J);
  nl::stencil_plan plan(st);
  auto u = grid.make_field();
  auto out = grid.make_field();
  const nl::dp_rect all{0, n, 0, n};
  for (auto _ : state) {
    nl::apply_nonlocal_operator(grid, plan, 1.0, u, out, all);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_KernelInfluenceKinds)->Arg(0)->Arg(1)->Arg(2);

static void BM_ManufacturedSource(benchmark::State& state) {
  const int n = 64;
  nl::grid2d grid(n, 4.0 / n);
  nl::influence J;
  nl::stencil st(grid, J);
  const double c = J.scaling_constant(2, 1.0, grid.epsilon());
  nl::manufactured_problem prob(grid, st, c);
  auto w = prob.exact_field(0.25);
  auto out = grid.make_field();
  const nl::dp_rect all{0, n, 0, n};
  for (auto _ : state) {
    prob.source_into(0.25, w, out, all);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_ManufacturedSource);

// -------------------------------------------------------------- guard pass --

namespace {

/// Million DP updates per second for one backend, self-calibrating the
/// repetition count to ~25 ms of measurement.
double measure_mdps(const nl::grid2d& grid, const nl::stencil_plan& plan,
                    const std::vector<double>& u, std::vector<double>& out,
                    nl::kernel_backend backend) {
  const nl::dp_rect all{0, grid.n(), 0, grid.n()};
  auto apply = [&](int reps) {
    for (int r = 0; r < reps; ++r) {
      nl::apply_nonlocal_operator_raw(u.data(), out.data(), grid.stride(),
                                      grid.ghost(), plan, 1.0, all, backend);
      benchmark::DoNotOptimize(out.data());
    }
  };
  apply(1);  // warm-up
  int reps = 1;
  double elapsed = 0.0;
  for (;;) {
    nlh::support::stopwatch sw;
    apply(reps);
    elapsed = sw.elapsed_s();
    if (elapsed >= 0.025 || reps > (1 << 24)) break;
    reps *= 2;
  }
  const double dp = static_cast<double>(reps) * grid.n() * grid.n();
  return dp / elapsed / 1e6;
}

/// Relative fence (ROADMAP "SIMD stencil kernel"): measure every backend at
/// every epsilon factor on a small grid and require the best vectorized
/// backend to clear 1.5x the scalar entry-list throughput at every factor
/// >= 4. Appends one JSON row per factor to `rows`.
bool run_relative_guard(std::string& rows, double& min_best_speedup_ge4) {
  const int n = 96;
  const int factors[] = {2, 4, 8, 16};
  constexpr double required_speedup = 1.5;

  bool pass = true;
  bool have_ge4 = false;
  min_best_speedup_ge4 = 0.0;

  std::printf("\nkernel guard, relative pass (n=%d, simd %s, avx512 %s):\n", n,
              nl::kernel_simd_available() ? "available" : "unavailable",
              nl::kernel_avx512_available() ? "available" : "unavailable");
  for (const int f : factors) {
    nl::grid2d grid(n, static_cast<double>(f) / n);
    nl::influence J;
    nl::stencil st(grid, J);
    nl::stencil_plan plan(st);
    auto u = grid.make_field();
    auto out = grid.make_field();
    for (std::size_t i = 0; i < u.size(); ++i)
      u[i] = 1e-3 * static_cast<double>(i % 101);

    const double scalar = measure_mdps(grid, plan, u, out, nl::kernel_backend::scalar);
    const double row_run = measure_mdps(grid, plan, u, out, nl::kernel_backend::row_run);
    const double simd = measure_mdps(grid, plan, u, out, nl::kernel_backend::simd);
    const double avx512 = measure_mdps(grid, plan, u, out, nl::kernel_backend::avx512);
    const double best = std::max({row_run, simd, avx512});
    const double best_speedup = best / scalar;

    if (f >= 4) {
      if (!have_ge4 || best_speedup < min_best_speedup_ge4)
        min_best_speedup_ge4 = best_speedup;
      have_ge4 = true;
      if (best_speedup < required_speedup) pass = false;
    }

    char row[512];
    std::snprintf(row, sizeof(row),
                  "    {\"eps_factor\": %d, \"stencil_size\": %zu, "
                  "\"scalar_mdps\": %.2f, \"row_run_mdps\": %.2f, "
                  "\"simd_mdps\": %.2f, \"avx512_mdps\": %.2f, "
                  "\"row_run_speedup\": %.3f, \"simd_speedup\": %.3f, "
                  "\"avx512_speedup\": %.3f}",
                  f, st.size(), scalar, row_run, simd, avx512,
                  row_run / scalar, simd / scalar, avx512 / scalar);
    if (!rows.empty()) rows += ",\n";
    rows += row;
    std::printf("  eps=%2d  scalar %8.2f  row_run %8.2f (%.2fx)  simd %8.2f "
                "(%.2fx)  avx512 %8.2f (%.2fx) MDP/s\n",
                f, scalar, row_run, row_run / scalar, simd, simd / scalar,
                avx512, avx512 / scalar);
  }
  return pass;
}

/// Absolute fence for the blocked pipeline (ROADMAP "Cache-blocked kernels
/// for large stencils"): at a large grid, pit the best available backend on
/// its default blocked plan against the pre-blocking baseline — the simd
/// backend on an unblocked (single-block) plan — with alternating paired
/// measurements, and gate on the min of the paired ratios plus an absolute
/// MDPS floor. Thresholds are calibrated to the repo's CI hardware (see
/// docs/kernels.md): with AVX-512 live the deep regime (eps=16, input
/// window past L1d) must clear 2x the unblocked simd baseline; eps=8 still
/// fits L1d, is FMA-bound rather than memory-bound, and fences at 1.25x.
/// Without AVX-512 the gate degrades to "blocking is not a regression".
bool run_blocked_guard(std::string& rows) {
  const int n = 768;
  const int factors[] = {8, 16};
  const int pairs = 3;
  const bool avx512 = nl::kernel_avx512_available();
  const nl::kernel_backend best_backend =
      avx512 ? nl::kernel_backend::avx512 : nl::kernel_backend::simd;

  bool pass = true;
  std::printf("\nkernel guard, blocked pass (n=%d, best backend %s):\n", n,
              nl::kernel_backend_name(best_backend));
  for (const int f : factors) {
    const double required_ratio = avx512 ? (f >= 16 ? 2.0 : 1.25) : 0.85;
    const double required_mdps = avx512 ? (f >= 16 ? 15.0 : 40.0)
                                        : (f >= 16 ? 5.0 : 20.0);

    nl::grid2d grid(n, static_cast<double>(f) / n);
    nl::influence J;
    nl::stencil st(grid, J);
    nl::stencil_plan blocked(st);  // default cache-derived geometry
    nl::stencil_plan unblocked(st);
    unblocked.set_tuning(nl::kernel_tuning_unblocked());
    auto u = grid.make_field();
    auto out = grid.make_field();
    for (std::size_t i = 0; i < u.size(); ++i)
      u[i] = 1e-3 * static_cast<double>(i % 101);

    double min_ratio = 0.0;
    double best_blocked = 0.0;
    double best_unblocked = 0.0;
    for (int p = 0; p < pairs; ++p) {
      // Alternate within the pair so drift (thermal, turbo, noisy
      // neighbors) hits both sides instead of biasing the ratio.
      const double ub =
          measure_mdps(grid, unblocked, u, out, nl::kernel_backend::simd);
      const double bl = measure_mdps(grid, blocked, u, out, best_backend);
      const double ratio = bl / ub;
      if (p == 0 || ratio < min_ratio) min_ratio = ratio;
      best_blocked = std::max(best_blocked, bl);
      best_unblocked = std::max(best_unblocked, ub);
    }

    const bool ok = min_ratio >= required_ratio && best_blocked >= required_mdps;
    if (!ok) pass = false;

    char row[512];
    std::snprintf(row, sizeof(row),
                  "    {\"eps_factor\": %d, \"best_backend\": \"%s\", "
                  "\"col_tile\": %d, \"row_block\": %d, "
                  "\"unblocked_simd_mdps\": %.2f, \"blocked_best_mdps\": %.2f, "
                  "\"blocked_vs_unblocked_min_paired_ratio\": %.3f, "
                  "\"required_ratio\": %.2f, \"required_mdps\": %.1f, "
                  "\"pass\": %s}",
                  f, nl::kernel_backend_name(best_backend),
                  blocked.blocking().col_tile, blocked.blocking().row_block,
                  best_unblocked, best_blocked, min_ratio, required_ratio,
                  required_mdps, ok ? "true" : "false");
    if (!rows.empty()) rows += ",\n";
    rows += row;
    std::printf("  eps=%2d  unblocked simd %8.2f  blocked %s %8.2f  "
                "min paired ratio %.2fx (need %.2fx, floor %.0f MDP/s) %s\n",
                f, best_unblocked, nl::kernel_backend_name(best_backend),
                best_blocked, min_ratio, required_ratio, required_mdps,
                ok ? "ok" : "FAIL");
  }
  return pass;
}

/// Run both guard passes and write BENCH_kernel.json. The process exit code
/// is the AND of the two fences.
bool run_kernel_guard(const char* path) {
  std::string relative_rows;
  double min_best_speedup_ge4 = 0.0;
  const bool relative_pass = run_relative_guard(relative_rows, min_best_speedup_ge4);

  std::string blocked_rows;
  const bool blocked_pass = run_blocked_guard(blocked_rows);
  const bool pass = relative_pass && blocked_pass;

  std::FILE* fp = std::fopen(path, "w");
  if (!fp) {
    std::fprintf(stderr, "kernel guard: cannot open %s\n", path);
    return false;
  }
  std::fprintf(fp,
               "{\n"
               "  \"bench\": \"micro_kernel\",\n"
               "  \"n\": 96,\n"
               "  \"simd_available\": %s,\n"
               "  \"simd_compiled_level\": %d,\n"
               "  \"avx512_available\": %s,\n"
               "  \"avx512_compiled_level\": %d,\n"
               "  \"required_speedup_at_eps_ge_4\": 1.50,\n"
               "  \"min_best_speedup_at_eps_ge_4\": %.3f,\n"
               "  \"relative_pass\": %s,\n"
               "  \"results\": [\n%s\n  ],\n"
               "  \"blocked_gate\": {\n"
               "    \"n\": 768,\n"
               "    \"paired_measurements\": 3,\n"
               "    \"pass\": %s,\n"
               "    \"results\": [\n%s\n    ]\n"
               "  },\n"
               "  \"pass\": %s\n"
               "}\n",
               nl::kernel_simd_available() ? "true" : "false",
               nl::kernel_simd_compiled_level(),
               nl::kernel_avx512_available() ? "true" : "false",
               nl::kernel_avx512_compiled_level(), min_best_speedup_ge4,
               relative_pass ? "true" : "false", relative_rows.c_str(),
               blocked_pass ? "true" : "false", blocked_rows.c_str(),
               pass ? "true" : "false");
  std::fclose(fp);
  std::printf("  guard %s -> %s\n", pass ? "PASS" : "FAIL", path);
  return pass;
}

}  // namespace

/// Custom main (this target links plain benchmark::benchmark, not
/// benchmark_main): the usual google-benchmark run, then the guard pass.
/// The guard is skipped when a --benchmark_filter excludes the backend
/// comparison, so filtered runs of unrelated benchmarks keep their exit
/// code and don't pay the measurement pass.
int main(int argc, char** argv) {
  bool guard_wanted = true;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    const std::string prefix = "--benchmark_filter=";
    if (arg.rfind(prefix, 0) == 0) {
      const std::string filter = arg.substr(prefix.size());
      guard_wanted = filter.empty() || filter == "all" || filter == ".*" ||
                     filter.find("KernelBackends") != std::string::npos;
    }
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!guard_wanted) return 0;
  const char* path = std::getenv("NLH_BENCH_KERNEL_JSON");
  return run_kernel_guard(path ? path : "BENCH_kernel.json") ? 0 : 1;
}

///
/// \file micro_kernel.cpp
/// \brief google-benchmark microbenchmarks of the nonlocal kernel: DP-update
/// throughput vs horizon factor, SD size, and influence function.
///

#include <benchmark/benchmark.h>

#include "nonlocal/grid2d.hpp"
#include "nonlocal/influence.hpp"
#include "nonlocal/nonlocal_operator.hpp"
#include "nonlocal/problem.hpp"
#include "nonlocal/stencil.hpp"

namespace nl = nlh::nonlocal;

static void BM_KernelVsEpsilon(benchmark::State& state) {
  const int eps_factor = static_cast<int>(state.range(0));
  const int n = 64;
  nl::grid2d grid(n, static_cast<double>(eps_factor) / n);
  nl::influence J;
  nl::stencil st(grid, J);
  auto u = grid.make_field();
  auto out = grid.make_field();
  for (std::size_t i = 0; i < u.size(); ++i) u[i] = 1e-3 * static_cast<double>(i % 101);
  const nl::dp_rect all{0, n, 0, n};
  for (auto _ : state) {
    nl::apply_nonlocal_operator(grid, st, 1.0, u, out, all);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
  state.counters["stencil_size"] = static_cast<double>(st.size());
}
BENCHMARK(BM_KernelVsEpsilon)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

static void BM_KernelVsBlockSize(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  nl::grid2d grid(n, 4.0 / n);
  nl::influence J;
  nl::stencil st(grid, J);
  auto u = grid.make_field();
  auto out = grid.make_field();
  const nl::dp_rect all{0, n, 0, n};
  for (auto _ : state) {
    nl::apply_nonlocal_operator(grid, st, 1.0, u, out, all);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_KernelVsBlockSize)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

static void BM_KernelInfluenceKinds(benchmark::State& state) {
  const auto kind = static_cast<nl::influence_kind>(state.range(0));
  const int n = 64;
  nl::grid2d grid(n, 4.0 / n);
  nl::influence J(kind);
  nl::stencil st(grid, J);
  auto u = grid.make_field();
  auto out = grid.make_field();
  const nl::dp_rect all{0, n, 0, n};
  for (auto _ : state) {
    nl::apply_nonlocal_operator(grid, st, 1.0, u, out, all);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_KernelInfluenceKinds)->Arg(0)->Arg(1)->Arg(2);

static void BM_ManufacturedSource(benchmark::State& state) {
  const int n = 64;
  nl::grid2d grid(n, 4.0 / n);
  nl::influence J;
  nl::stencil st(grid, J);
  const double c = J.scaling_constant(2, 1.0, grid.epsilon());
  nl::manufactured_problem prob(grid, st, c);
  auto w = prob.exact_field(0.25);
  auto out = grid.make_field();
  const nl::dp_rect all{0, n, 0, n};
  for (auto _ : state) {
    prob.source_into(0.25, w, out, all);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_ManufacturedSource);

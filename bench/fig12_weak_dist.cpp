///
/// \file fig12_weak_dist.cpp
/// \brief Reproduces paper Fig. 12: weak scaling of the distributed solver.
/// SD size fixed at 50x50; n x n SDs for n = 1..8 (mesh 50n x 50n),
/// epsilon = 8h, 20 steps, over 1 / 2 / 4 nodes with METIS-style (multilevel
/// partitioner) SD distribution as in the paper.
///

#include <iostream>

#include "bench_common.hpp"
#include "support/table.hpp"

int main() {
  using namespace nlh;
  const int sd_size = 50;
  const int eps_factor = 8;
  const int steps = 20;
  const double sec_per_dp = bench::measure_seconds_per_dp(eps_factor);

  std::cout << "Fig. 12 — weak scaling, distributed\n"
            << "SD size 50x50, n x n SDs, epsilon = 8h, 20 steps, METIS-style "
               "SD distribution; kernel: "
            << sec_per_dp * 1e9 << " ns/DP-update\n\n";

  support::table tab({"#SDs", "mesh", "T(1 node) s", "speedup 1N",
                      "speedup 2N", "speedup 4N"});
  for (int n = 1; n <= 8; ++n) {
    const dist::tiling t(n, n, sd_size, eps_factor);
    const auto cost = bench::dp_cost_model();
    double t1 = 0.0;
    std::vector<double> speedups;
    for (int nodes : {1, 2, 4}) {
      if (nodes > t.num_sds()) {
        speedups.push_back(1.0);
        continue;
      }
      auto cluster = bench::skylake_cluster(1, sec_per_dp);
      bench::set_uniform_speed(cluster, nodes, sec_per_dp);
      const auto own = bench::metis_ownership(t, nodes);
      const auto res = dist::simulate_timestepping(t, own, steps, cost, cluster);
      if (nodes == 1) t1 = res.makespan;
      speedups.push_back(t1 / res.makespan);
    }
    const int mesh = n * sd_size;
    auto& row = tab.row()
                    .add(n * n)
                    .add(std::to_string(mesh) + "x" + std::to_string(mesh))
                    .add(t1, 4);
    for (double s : speedups) row.add(s, 3);
  }
  tab.print(std::cout);
  std::cout << "\nPaper shape: speedup depends linearly on the node count "
               "irrespective of problem size\n(once every node owns at least "
               "one SD).\n";
  return 0;
}

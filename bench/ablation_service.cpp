///
/// \file ablation_service.cpp
/// \brief QoS service-front-end gate (docs/service.md): the same
/// deterministic saturating traffic trace runs twice through
/// `nlh::svc::service_loop` — once with the class weights / deadlines on,
/// once with `qos_config::enabled = false` (one FIFO queue across
/// classes) — and the gate demands QoS actually buy what it claims:
///
///   1. interactive p99 step latency with QoS >= 1.5x better than the
///      FIFO baseline (client-centric latency: the first step is measured
///      from submission, so FIFO queueing behind soak work lands squarely
///      in the interactive tail; the 8:3:1 weights pull it back out),
///   2. batch throughput (completed batch jobs / service wall) within 15%
///      of the baseline — priority for the interactive class must not
///      starve the throughput class,
///   3. determinism: generating the trace twice from the same seed yields
///      identical FNV-1a checksums (the whole offered load is a pure
///      function of the seed).
///
/// The offered load is an MMPP mix (50% interactive / 30% batch / 20%
/// soak) replayed back-to-back (time_scale 0), which saturates the
/// execution slots immediately — the regime where scheduling policy is
/// visible at all. Quotas are opened wide so the comparison isolates the
/// scheduler; the quota path has its own tests (tests/svc_test.cpp).
///
/// Writes BENCH_service.json (NLH_BENCH_SERVICE_JSON overrides the path)
/// and exits non-zero unless every gate holds; CI runs it as a Release
/// smoke step and uploads the report.
///

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "svc/service.hpp"
#include "svc/traffic_gen.hpp"

namespace {

using namespace nlh;

struct run_result {
  svc::service_stats stats;
  double interactive_p99 = 0.0;  ///< step latency, seconds
  double batch_jobs_per_second = 0.0;
};

run_result run_trace(const std::vector<svc::arrival>& trace, bool qos_on) {
  svc::service_options opt;
  opt.pool_threads = 4;
  opt.qos.enabled = qos_on;
  // Wide-open quotas: this bench isolates the scheduler, not policing.
  opt.default_quota.rate_per_second = 1e6;
  opt.default_quota.burst = 1e6;
  opt.default_quota.max_in_flight = 1 << 20;

  svc::service_loop loop(opt);
  auto futures = svc::replay(loop, trace, /*time_scale=*/0.0);
  for (auto& f : futures) f.get();

  run_result r;
  r.stats = loop.stats();
  r.interactive_p99 = r.stats.of(svc::qos_class::interactive).step_latency.p99;
  const auto& batch = r.stats.of(svc::qos_class::batch);
  if (r.stats.wall_seconds > 0.0)
    r.batch_jobs_per_second =
        static_cast<double>(batch.completed) / r.stats.wall_seconds;
  return r;
}

void print_run(const char* name, const run_result& r) {
  std::printf("  %-12s:", name);
  for (int c = 0; c < svc::qos_class_count; ++c) {
    const auto& cs = r.stats.per_class[static_cast<std::size_t>(c)];
    std::printf(" %s %llu/%llu ok (p99 %.1f ms)",
                svc::to_string(static_cast<svc::qos_class>(c)),
                static_cast<unsigned long long>(cs.completed),
                static_cast<unsigned long long>(cs.submitted),
                cs.step_latency.p99 * 1e3);
  }
  std::printf("  wall %.3f s\n", r.stats.wall_seconds);
}

}  // namespace

int main() {
  const double gate_latency_ratio = 1.5;
  const double gate_throughput_frac = 0.85;

  svc::traffic_options traffic;
  traffic.seed = 42;
  traffic.arrivals = 600;
  traffic.mean_rate = 400.0;  // far above service capacity: saturating
  traffic.burst_factor = 4.0;
  traffic.tenants = 8;
  traffic.n = 24;
  traffic.steps_soak = 16;  // deep soak backlog sharpens the FIFO contrast

  // Gate 3 first: the trace must be a pure function of its seed.
  const auto trace = svc::generate_traffic(traffic);
  const std::uint64_t sum_a = svc::trace_checksum(trace);
  const std::uint64_t sum_b = svc::trace_checksum(svc::generate_traffic(traffic));
  const bool deterministic = sum_a == sum_b;

  std::cout << "QoS service ablation: " << trace.size()
            << " arrivals (seed " << traffic.seed
            << "), 50/30/20 interactive/batch/soak mix, replayed "
               "back-to-back through 4 workers.\n\n";

  // Best-of-3 per variant (min tail latency, max throughput): a timeshared
  // CI box injects multiplicative scheduling noise into any single run, and
  // the gate should compare the two *policies*, not two draws of the
  // machine. Variants alternate so a load spike hits both.
  const int reps = 3;
  run_result fifo, qos;
  for (int r = 0; r < reps; ++r) {
    const auto f = run_trace(trace, /*qos_on=*/false);
    const auto q = run_trace(trace, /*qos_on=*/true);
    if (r == 0) {
      fifo = f;
      qos = q;
    } else {
      fifo.interactive_p99 = std::min(fifo.interactive_p99, f.interactive_p99);
      fifo.batch_jobs_per_second =
          std::max(fifo.batch_jobs_per_second, f.batch_jobs_per_second);
      qos.interactive_p99 = std::min(qos.interactive_p99, q.interactive_p99);
      qos.batch_jobs_per_second =
          std::max(qos.batch_jobs_per_second, q.batch_jobs_per_second);
    }
  }
  print_run("fifo (no QoS)", fifo);
  print_run("qos 8:3:1", qos);

  const double latency_ratio =
      qos.interactive_p99 > 0.0 ? fifo.interactive_p99 / qos.interactive_p99
                                : 0.0;
  const double throughput_frac =
      fifo.batch_jobs_per_second > 0.0
          ? qos.batch_jobs_per_second / fifo.batch_jobs_per_second
          : 0.0;

  const bool latency_pass = latency_ratio >= gate_latency_ratio;
  const bool throughput_pass = throughput_frac >= gate_throughput_frac;
  const bool pass = latency_pass && throughput_pass && deterministic;

  std::printf("\n  interactive p99: %.2f ms (fifo) vs %.2f ms (qos) -> "
              "%.2fx better (gate >= %.1fx): %s\n",
              fifo.interactive_p99 * 1e3, qos.interactive_p99 * 1e3,
              latency_ratio, gate_latency_ratio,
              latency_pass ? "PASS" : "FAIL");
  std::printf("  batch throughput: %.1f jobs/s (fifo) vs %.1f jobs/s (qos) "
              "-> %.0f%% retained (gate >= %.0f%%): %s\n",
              fifo.batch_jobs_per_second, qos.batch_jobs_per_second,
              throughput_frac * 100.0, gate_throughput_frac * 100.0,
              throughput_pass ? "PASS" : "FAIL");
  std::printf("  trace checksum %016llx == %016llx: %s\n",
              static_cast<unsigned long long>(sum_a),
              static_cast<unsigned long long>(sum_b),
              deterministic ? "PASS" : "FAIL");

  const char* env = std::getenv("NLH_BENCH_SERVICE_JSON");
  const char* path = env ? env : "BENCH_service.json";
  std::FILE* fp = std::fopen(path, "w");
  if (!fp) {
    std::fprintf(stderr, "service gate: cannot open %s\n", path);
    return 1;
  }
  std::fprintf(
      fp,
      "{\n"
      "  \"bench\": \"ablation_service\",\n"
      "  \"config\": {\"seed\": %llu, \"arrivals\": %d, \"mean_rate\": %.1f, "
      "\"burst_factor\": %.1f, \"tenants\": %d, \"n\": %d, "
      "\"pool_threads\": 4},\n"
      "  \"gate\": \"interactive p99 step latency >= %.1fx better than "
      "no-QoS FIFO; batch throughput >= %.0f%% of baseline; trace "
      "deterministic under fixed seed\",\n"
      "  \"pass\": %s,\n"
      "  \"interactive_p99_s\": {\"fifo\": %.6f, \"qos\": %.6f, "
      "\"ratio\": %.3f, \"pass\": %s},\n"
      "  \"batch_jobs_per_second\": {\"fifo\": %.3f, \"qos\": %.3f, "
      "\"retained\": %.3f, \"pass\": %s},\n"
      "  \"shed\": {\"fifo\": %llu, \"qos\": %llu},\n"
      "  \"trace_checksum\": \"%016llx\", \"deterministic\": %s\n"
      "}\n",
      static_cast<unsigned long long>(traffic.seed), traffic.arrivals,
      traffic.mean_rate, traffic.burst_factor, traffic.tenants, traffic.n,
      gate_latency_ratio, gate_throughput_frac * 100.0,
      pass ? "true" : "false", fifo.interactive_p99, qos.interactive_p99,
      latency_ratio, latency_pass ? "true" : "false",
      fifo.batch_jobs_per_second, qos.batch_jobs_per_second, throughput_frac,
      throughput_pass ? "true" : "false",
      static_cast<unsigned long long>(
          fifo.stats.of(svc::qos_class::interactive).shed +
          fifo.stats.of(svc::qos_class::batch).shed +
          fifo.stats.of(svc::qos_class::soak).shed),
      static_cast<unsigned long long>(
          qos.stats.of(svc::qos_class::interactive).shed +
          qos.stats.of(svc::qos_class::batch).shed +
          qos.stats.of(svc::qos_class::soak).shed),
      static_cast<unsigned long long>(sum_a), deterministic ? "true" : "false");
  std::fclose(fp);

  std::cout << "\nTakeaway: under saturation FIFO makes every class pay the "
               "same queueing tax, so the\nlatency-sensitive class inherits "
               "the soak class's backlog; deficit scheduling by\n8:3:1 "
               "weights + deadline shedding buys the interactive tail back "
               "without starving\nbatch throughput (docs/service.md).\n"
            << "\n  gate " << (pass ? "PASS" : "FAIL") << " -> " << path
            << "\n";
  return pass ? 0 : 1;
}

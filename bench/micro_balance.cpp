///
/// \file micro_balance.cpp
/// \brief Microbenchmarks of the load-balancing machinery: Algorithm 1
/// end-to-end, contiguity-preserving transfer, dependency-tree build and
/// the eq. 8-10 load model.
///

#include <benchmark/benchmark.h>

#include "balance/balancer.hpp"
#include "balance/dependency_tree.hpp"
#include "balance/transfer.hpp"
#include "partition/partitioner.hpp"
#include "support/rng.hpp"

namespace bal = nlh::balance;
namespace dist = nlh::dist;

namespace {

dist::ownership_map block_own(const dist::tiling& t, int nodes) {
  return dist::ownership_map::from_partition(
      t, nodes, nlh::partition::block_partition(t.sd_rows(), t.sd_cols(), nodes));
}

}  // namespace

static void BM_BalanceStep(benchmark::State& state) {
  const int grid = static_cast<int>(state.range(0));
  const int nodes = 4;
  dist::tiling t(grid, grid, 10, 2);
  nlh::support::rng gen(42);
  for (auto _ : state) {
    state.PauseTiming();
    auto own = block_own(t, nodes);
    std::vector<double> busy(nodes);
    for (auto& b : busy) b = gen.uniform(0.5, 2.0);
    state.ResumeTiming();
    auto rep = bal::balance_step(t, own, busy);
    benchmark::DoNotOptimize(rep.moves.size());
  }
  state.counters["SDs"] = grid * grid;
}
BENCHMARK(BM_BalanceStep)->Arg(8)->Arg(16)->Arg(32);

static void BM_TransferSds(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  dist::tiling t(16, 16, 10, 2);
  for (auto _ : state) {
    state.PauseTiming();
    auto own = block_own(t, 2);
    state.ResumeTiming();
    auto moves = bal::transfer_sds(t, own, 0, 1, count);
    benchmark::DoNotOptimize(moves.size());
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_TransferSds)->Arg(1)->Arg(8)->Arg(32);

static void BM_DependencyTree(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  // Ring-of-cliques adjacency.
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) {
    adj[static_cast<std::size_t>(i)].push_back((i + 1) % nodes);
    adj[static_cast<std::size_t>(i)].push_back((i + nodes - 1) % nodes);
  }
  std::vector<double> imb(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) imb[static_cast<std::size_t>(i)] = i % 5 - 2.0;
  for (auto _ : state) {
    auto tree = bal::build_dependency_tree(adj, imb);
    benchmark::DoNotOptimize(tree.order.data());
  }
}
BENCHMARK(BM_DependencyTree)->Arg(4)->Arg(16)->Arg(64);

static void BM_LoadModel(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  std::vector<int> counts(static_cast<std::size_t>(nodes), 16);
  std::vector<double> busy(static_cast<std::size_t>(nodes));
  nlh::support::rng gen(7);
  for (auto& b : busy) b = gen.uniform(0.5, 2.0);
  for (auto _ : state) {
    const auto power = bal::compute_power(counts, busy);
    const auto expected = bal::expected_sds(counts, power);
    const auto imb = bal::load_imbalance(counts, expected);
    benchmark::DoNotOptimize(imb.data());
  }
}
BENCHMARK(BM_LoadModel)->Arg(4)->Arg(64);

///
/// \file micro_checkpoint.cpp
/// \brief google-benchmark microbenchmarks of the src/ckpt/ subsystem —
/// codec encode/decode throughput on pulse-like and dense frames, the
/// session hibernate/restore round trip — plus a self-contained guard pass
/// that writes BENCH_checkpoint.json.
///
/// The guard is the regression fence for the compression claim
/// (docs/checkpoint.md): on a smooth compact-support pulse field the delta
/// codec must checkpoint at least `min_smooth_ratio` (3x) smaller than raw,
/// and a 16-tenant batch under a resident cap of 4 must actually hold 4x
/// more sessions than the cap. The dense crack field's ratio is *reported*
/// (full-entropy fields hover near 1x by design) but never gated.
/// Hibernate/restore latencies ride along for trend tracking. Set
/// NLH_BENCH_CHECKPOINT_JSON to redirect the report (default:
/// ./BENCH_checkpoint.json).
///

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "api/batch.hpp"
#include "api/scenario.hpp"
#include "api/session.hpp"
#include "ckpt/codec.hpp"
#include "dist/dist_solver.hpp"
#include "dist/ownership.hpp"
#include "support/stopwatch.hpp"

namespace api = nlh::api;
namespace ckpt = nlh::ckpt;
namespace dist = nlh::dist;
namespace net = nlh::net;

namespace {

/// Pulse-like frame: exact-zero far field with a smooth bump — the shape
/// the RLE fast path is built for.
std::vector<double> pulse_frame(std::size_t n) {
  std::vector<double> v(n, 0.0);
  for (std::size_t i = n / 2; i < n / 2 + n / 16; ++i)
    v[i] = 1.0 + 0.25 * static_cast<double>(i % 7);
  return v;
}

/// Dense full-entropy frame (every value distinct, nothing on a small
/// lattice): the worst case the codec must stay near-1x on, not regress.
std::vector<double> dense_frame(std::size_t n) {
  std::vector<double> v(n);
  double x = 0.123456789;
  for (auto& e : v) {
    x = x * 1.0000001 + 1e-9;
    e = x;
  }
  return v;
}

}  // namespace

static void BM_CkptEncodePulse(benchmark::State& state) {
  const auto& c = *ckpt::find_codec(state.range(0) == 0 ? "raw" : "delta");
  const auto vals = pulse_frame(16384);
  for (auto _ : state) {
    net::archive_writer w;
    benchmark::DoNotOptimize(c.encode(vals.data(), vals.size(), nullptr, w));
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(vals.size() * 8));
}
BENCHMARK(BM_CkptEncodePulse)->Arg(0)->Arg(1);

static void BM_CkptEncodeDense(benchmark::State& state) {
  const auto& c = *ckpt::find_codec(state.range(0) == 0 ? "raw" : "delta");
  const auto vals = dense_frame(16384);
  for (auto _ : state) {
    net::archive_writer w;
    benchmark::DoNotOptimize(c.encode(vals.data(), vals.size(), nullptr, w));
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(vals.size() * 8));
}
BENCHMARK(BM_CkptEncodeDense)->Arg(0)->Arg(1);

static void BM_CkptDecodePulse(benchmark::State& state) {
  const auto& c = ckpt::delta_codec();
  const auto vals = pulse_frame(16384);
  net::archive_writer w;
  c.encode(vals.data(), vals.size(), nullptr, w);
  const auto buf = w.take();
  std::vector<double> out(vals.size());
  for (auto _ : state) {
    net::archive_reader r(buf);
    c.decode(r, out.data(), out.size(), nullptr);
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(vals.size() * 8));
}
BENCHMARK(BM_CkptDecodePulse);

static void BM_CkptHibernateRestore(benchmark::State& state) {
  api::session_options o;
  o.scenario = "gaussian_pulse";
  o.n = 64;
  o.hibernation.enabled = true;
  api::session s(o);
  auto& h = s.solver();
  h.run(2);
  for (auto _ : state) {
    h.hibernate();
    benchmark::DoNotOptimize(h.current_step());  // forces the restore
  }
}
BENCHMARK(BM_CkptHibernateRestore);

// -------------------------------------------------------------- guard pass --

namespace {

/// checkpoint_full() size of a 10-step distributed run of `scn` under
/// `codec_name`, plus the SD count (for bytes/SD reporting).
std::uint64_t dist_checkpoint_bytes(std::shared_ptr<const api::scenario> scn,
                                    const std::string& codec_name,
                                    int* num_sds = nullptr) {
  dist::dist_config cfg;
  cfg.sd_rows = cfg.sd_cols = 4;
  cfg.sd_size = 16;
  cfg.epsilon_factor = 2;
  cfg.threads_per_locality = 1;
  cfg.checkpoint.codec = codec_name;
  const dist::tiling t(cfg.sd_rows, cfg.sd_cols, cfg.sd_size, cfg.epsilon_factor);
  std::vector<int> owner(static_cast<std::size_t>(t.num_sds()));
  for (int sd = 0; sd < t.num_sds(); ++sd)
    owner[static_cast<std::size_t>(sd)] = (sd / cfg.sd_cols) < cfg.sd_rows / 2 ? 0 : 1;
  dist::dist_solver solver(cfg, dist::ownership_map(t, 2, std::move(owner)),
                           std::move(scn));
  solver.set_initial_condition();
  // The nonlocal support spreads by epsilon (= 2h) per forward-Euler step;
  // 4 steps keep a compact-support pulse compact (far field exactly 0.0)
  // the way a production checkpoint cadence would, instead of letting the
  // bump swallow the domain before the snapshot.
  solver.run(4);
  if (num_sds) *num_sds = t.num_sds();
  return solver.checkpoint_full().size();
}

/// Best-of-reps hibernate and restore latency of a 64x64 serial session.
void measure_hibernate_restore(double* hibernate_ms, double* restore_ms) {
  api::session_options o;
  o.scenario = "gaussian_pulse";
  o.n = 64;
  o.hibernation.enabled = true;
  api::session s(o);
  auto& h = s.solver();
  h.run(2);
  *hibernate_ms = *restore_ms = 1e300;
  for (int r = 0; r < 5; ++r) {
    nlh::support::stopwatch sw;
    h.hibernate();
    *hibernate_ms = std::min(*hibernate_ms, sw.elapsed_s() * 1e3);
    nlh::support::stopwatch sr;
    h.current_step();  // transparent restore
    *restore_ms = std::min(*restore_ms, sr.elapsed_s() * 1e3);
  }
}

bool run_checkpoint_guard(const char* path) {
  constexpr double min_smooth_ratio = 3.0;
  constexpr int tenants = 16;
  constexpr std::size_t resident_cap = 4;

  // Compact-support pulse: the far field is exactly 0.0 and stays exact
  // zero under the source-free forward-Euler update, so the delta codec's
  // RLE path has honest runs to collapse — this is the gated scenario.
  auto smooth = std::make_shared<api::gaussian_pulse_scenario>(
      0.5, 0.5, 0.05, 1.0, /*support_radius=*/0.12);
  int num_sds = 0;
  const auto smooth_raw = dist_checkpoint_bytes(smooth, "raw", &num_sds);
  const auto smooth_delta = dist_checkpoint_bytes(smooth, "delta");
  const double smooth_ratio =
      static_cast<double>(smooth_raw) / static_cast<double>(smooth_delta);

  // Dense crack field: reported for honesty, never gated (full-entropy
  // values have no runs and rarely share a small lattice).
  const auto crack = api::make_scenario("crack");
  const auto crack_raw = dist_checkpoint_bytes(crack, "raw");
  const auto crack_delta = dist_checkpoint_bytes(crack, "delta");
  const double crack_ratio =
      static_cast<double>(crack_raw) / static_cast<double>(crack_delta);

  double hibernate_ms = 0.0, restore_ms = 0.0;
  measure_hibernate_restore(&hibernate_ms, &restore_ms);

  // Multi-tenant demo: 16 persistent tenants under a resident cap of 4 —
  // the runner must hold 4x more sessions than the cap allows in memory.
  api::batch_options bopt;
  bopt.pool_threads = 2;
  bopt.max_concurrent_jobs = 2;
  bopt.hibernation.enabled = true;
  bopt.hibernation.resident_cap = resident_cap;
  std::size_t held = 0, resident = 0;
  {
    api::batch_runner runner(bopt);
    api::session_options so;
    so.scenario = "gaussian_pulse";
    so.n = 32;
    so.epsilon_factor = 2;
    for (int i = 0; i < tenants; ++i) {
      api::batch_job job;
      job.options = so;
      job.num_steps = 2;
      job.session_key = "tenant-" + std::to_string(i);
      runner.submit(std::move(job));
    }
    runner.wait_all();
    held = runner.hibernation()->session_count();
    resident = runner.hibernation()->resident_count();
  }
  const double tenants_per_cap =
      static_cast<double>(held) / static_cast<double>(resident_cap);

  const bool ratio_ok = smooth_ratio >= min_smooth_ratio;
  const bool tenants_ok = held == tenants && resident <= resident_cap &&
                          tenants_per_cap >= 4.0;
  const bool pass = ratio_ok && tenants_ok;

  std::printf("\ncheckpoint guard (%d SDs, 16x16 DPs each):\n", num_sds);
  std::printf("  smooth pulse  raw %7llu B  delta %7llu B  ratio %5.2fx "
              "(gate >= %.1fx)\n",
              static_cast<unsigned long long>(smooth_raw),
              static_cast<unsigned long long>(smooth_delta), smooth_ratio,
              min_smooth_ratio);
  std::printf("  crack (dense) raw %7llu B  delta %7llu B  ratio %5.2fx "
              "(reported, not gated)\n",
              static_cast<unsigned long long>(crack_raw),
              static_cast<unsigned long long>(crack_delta), crack_ratio);
  std::printf("  hibernate %.3f ms   restore %.3f ms (64x64 serial, best of 5)\n",
              hibernate_ms, restore_ms);
  std::printf("  batch: %zu tenants held, %zu resident (cap %zu) -> %.1fx "
              "(gate >= 4x)\n",
              held, resident, resident_cap, tenants_per_cap);

  std::FILE* fp = std::fopen(path, "w");
  if (!fp) {
    std::fprintf(stderr, "checkpoint guard: cannot open %s\n", path);
    return false;
  }
  std::fprintf(fp,
               "{\n"
               "  \"bench\": \"micro_checkpoint\",\n"
               "  \"num_sds\": %d,\n"
               "  \"smooth_raw_bytes\": %llu,\n"
               "  \"smooth_delta_bytes\": %llu,\n"
               "  \"smooth_bytes_per_sd_raw\": %.1f,\n"
               "  \"smooth_bytes_per_sd_delta\": %.1f,\n"
               "  \"smooth_ratio\": %.3f,\n"
               "  \"min_smooth_ratio\": %.1f,\n"
               "  \"crack_raw_bytes\": %llu,\n"
               "  \"crack_delta_bytes\": %llu,\n"
               "  \"crack_ratio\": %.3f,\n"
               "  \"hibernate_ms\": %.4f,\n"
               "  \"restore_ms\": %.4f,\n"
               "  \"tenants_held\": %zu,\n"
               "  \"resident_cap\": %zu,\n"
               "  \"tenants_per_cap\": %.1f,\n"
               "  \"pass\": %s\n"
               "}\n",
               num_sds, static_cast<unsigned long long>(smooth_raw),
               static_cast<unsigned long long>(smooth_delta),
               static_cast<double>(smooth_raw) / num_sds,
               static_cast<double>(smooth_delta) / num_sds, smooth_ratio,
               min_smooth_ratio, static_cast<unsigned long long>(crack_raw),
               static_cast<unsigned long long>(crack_delta), crack_ratio,
               hibernate_ms, restore_ms, held, resident_cap, tenants_per_cap,
               pass ? "true" : "false");
  std::fclose(fp);
  std::printf("  guard %s -> %s\n", pass ? "PASS" : "FAIL", path);
  return pass;
}

}  // namespace

/// Custom main (this target links plain benchmark::benchmark, not
/// benchmark_main): the usual google-benchmark run, then the guard pass.
/// The guard is skipped when a --benchmark_filter excludes the checkpoint
/// benchmarks.
int main(int argc, char** argv) {
  bool guard_wanted = true;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    const std::string prefix = "--benchmark_filter=";
    if (arg.rfind(prefix, 0) == 0) {
      const std::string filter = arg.substr(prefix.size());
      guard_wanted = filter.empty() || filter == "all" || filter == ".*" ||
                     filter.find("Ckpt") != std::string::npos;
    }
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!guard_wanted) return 0;
  const char* path = std::getenv("NLH_BENCH_CHECKPOINT_JSON");
  return run_checkpoint_guard(path ? path : "BENCH_checkpoint.json") ? 0 : 1;
}

///
/// \file ablation_partition.cpp
/// \brief Ablation for §6.2's design choice: how much does METIS-style
/// partitioning matter? Compares the multilevel partitioner against strip /
/// block / random ownership on the Fig. 13 configuration: weighted edge
/// cut, per-step ghost traffic and end-to-end virtual makespan.
///

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "partition/metrics.hpp"
#include "support/table.hpp"

int main() {
  using namespace nlh;
  const int sd_grid = 16;
  const int sd_size = 50;
  const int eps_factor = 8;
  const int nodes = 8;
  const int steps = 20;
  const double sec_per_dp = bench::measure_seconds_per_dp(eps_factor);

  const dist::tiling t(sd_grid, sd_grid, sd_size, eps_factor);
  partition::mesh_dual_options mopt;
  mopt.sd_rows = sd_grid;
  mopt.sd_cols = sd_grid;
  mopt.sd_size = sd_size;
  mopt.ghost_width = eps_factor;
  const auto dual = partition::build_mesh_dual(mopt);

  std::cout << "Ablation — partitioning strategy on the Fig. 13 setup "
               "(800x800 mesh, 16x16 SDs, " << nodes << " nodes)\n\n";

  partition::partition_options popt;
  popt.k = nodes;
  const auto ml = partition::multilevel_partition(dual, popt);
  const auto rb = partition::recursive_bisection_partition(dual, popt);
  const auto strip = partition::strip_partition(sd_grid, sd_grid, nodes);
  const auto block = partition::block_partition(sd_grid, sd_grid, nodes);
  const auto rnd = partition::random_partition(dual.num_vertices(), nodes, 7);

  const auto cost = bench::dp_cost_model();
  support::table tab({"method", "edge-cut DPs", "contiguous", "ghost MiB/run",
                      "makespan s", "slowdown vs best"});
  struct row_data {
    const char* name;
    partition::partition_vector part;
  };
  std::vector<row_data> rows{{"multilevel k-way", ml}, {"recursive bisection", rb},
                             {"block", block}, {"strip", strip}, {"random", rnd}};
  std::vector<double> makespans;
  for (const auto& r : rows) {
    auto cluster = bench::skylake_cluster(1, sec_per_dp);
    bench::set_uniform_speed(cluster, nodes, sec_per_dp);
    const auto own = dist::ownership_map::from_partition(t, nodes, r.part);
    const auto res = dist::simulate_timestepping(t, own, steps, cost, cluster);
    makespans.push_back(res.makespan);
  }
  const double best = *std::min_element(makespans.begin(), makespans.end());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    auto cluster = bench::skylake_cluster(1, sec_per_dp);
    bench::set_uniform_speed(cluster, nodes, sec_per_dp);
    const auto own = dist::ownership_map::from_partition(t, nodes, rows[i].part);
    const auto res = dist::simulate_timestepping(t, own, steps, cost, cluster);
    tab.row()
        .add(rows[i].name)
        .add(partition::edge_cut(dual, rows[i].part), 6)
        .add(partition::parts_contiguous(dual, rows[i].part, nodes) ? "yes" : "no")
        .add(res.network_bytes / (1024.0 * 1024.0), 4)
        .add(res.makespan, 4)
        .add(res.makespan / best, 4);
  }
  tab.print(std::cout);
  std::cout << "\nTakeaway: contiguous low-cut partitions (multilevel/block) "
               "move far fewer ghost bytes\nthan strips or random assignment; "
               "with overlap the makespan gap only opens when the\nnetwork "
               "becomes the bottleneck — the cut is the headroom the overlap "
               "trick relies on.\n";
  return 0;
}

///
/// \file micro_runtime.cpp
/// \brief Microbenchmarks of the mini-AMT runtime: async launch/get
/// round-trip, then-continuation chaining, when_all fan-in, the
/// per-direction overlap primitives (dataflow_one, when_all_ready), and
/// the counter registry.
///

#include <benchmark/benchmark.h>

#include "amt/async.hpp"
#include "amt/counters.hpp"
#include "amt/thread_pool.hpp"

namespace amt = nlh::amt;

static void BM_AsyncRoundTrip(benchmark::State& state) {
  amt::thread_pool pool(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    auto f = amt::async(pool, [] { return 42; });
    benchmark::DoNotOptimize(f.get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AsyncRoundTrip)->Arg(1)->Arg(2)->Arg(4);

static void BM_ReadyFutureThenChain(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto f = amt::make_ready_future<int>(0);
    for (int i = 0; i < depth; ++i)
      f = f.then([](amt::future<int> r) { return r.get() + 1; });
    benchmark::DoNotOptimize(f.get());
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_ReadyFutureThenChain)->Arg(1)->Arg(8)->Arg(64);

static void BM_WhenAllFanIn(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::vector<amt::future<int>> fs;
    fs.reserve(static_cast<std::size_t>(width));
    for (int i = 0; i < width; ++i) fs.push_back(amt::make_ready_future<int>(i));
    auto all = amt::when_all(std::move(fs));
    benchmark::DoNotOptimize(all.get().size());
  }
  state.SetItemsProcessed(state.iterations() * width);
}
BENCHMARK(BM_WhenAllFanIn)->Arg(4)->Arg(32)->Arg(256);

/// The per-direction ghost hop: one dependency, one pool post — compare
/// with BM_WhenAllFanIn at width 1 plus a task launch (the machinery the
/// general dataflow pays).
static void BM_DataflowOne(benchmark::State& state) {
  amt::thread_pool pool(1);
  for (auto _ : state) {
    amt::promise<int> p;
    auto out = amt::dataflow_one(pool, p.get_future(),
                                 [](amt::future<int> r) { return r.get() + 1; });
    p.set_value(41);
    benchmark::DoNotOptimize(out.get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DataflowOne);

/// The corner-strip readiness gate: a counter-based fan-in over 2-8 void
/// futures with no future-vector round-trip (range = fan-in width).
static void BM_WhenAllReadySmall(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::vector<amt::promise<void>> ps(static_cast<std::size_t>(width));
    std::vector<amt::future<void>> fs;
    fs.reserve(static_cast<std::size_t>(width));
    for (auto& p : ps) fs.push_back(p.get_future());
    auto gate = amt::when_all_ready(fs.data(), fs.size());
    for (auto& p : ps) p.set_value();
    gate.wait();
    benchmark::DoNotOptimize(gate.is_ready());
  }
  state.SetItemsProcessed(state.iterations() * width);
}
BENCHMARK(BM_WhenAllReadySmall)->Arg(2)->Arg(3)->Arg(8);

static void BM_TaskThroughput(benchmark::State& state) {
  amt::thread_pool pool(static_cast<unsigned>(state.range(0)));
  const int batch = 256;
  for (auto _ : state) {
    std::vector<amt::future<void>> fs;
    fs.reserve(batch);
    for (int i = 0; i < batch; ++i)
      fs.push_back(amt::async(pool, [] { benchmark::ClobberMemory(); }));
    amt::wait_all(fs);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_TaskThroughput)->Arg(1)->Arg(2)->Arg(4);

static void BM_CounterPoll(benchmark::State& state) {
  amt::thread_pool pool(1, /*locality=*/17);
  auto& reg = amt::counter_registry::instance();
  const auto path = amt::busy_time_path(17);
  for (auto _ : state) benchmark::DoNotOptimize(reg.value(path));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterPoll);

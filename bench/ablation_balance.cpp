///
/// \file ablation_balance.cpp
/// \brief Ablations for §7's design choices:
///  (a) balancing ON vs OFF on a heterogeneous cluster (time-to-solution);
///  (b) contiguity-preserving frontier transfer vs naive transfer (ghost
///      traffic and SP fragmentation after balancing).
///

#include <iostream>

#include "balance/sim_driver.hpp"
#include "balance/transfer.hpp"
#include "bench_common.hpp"
#include "model/capacity.hpp"
#include "partition/metrics.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace {

using namespace nlh;

/// Naive transfer: move `count` randomly chosen SDs of the lender,
/// regardless of adjacency or contiguity — what a balancer that only looks
/// at SD counts (no locality) would do.
int naive_transfer(const dist::tiling& t, dist::ownership_map& own, int from,
                   int to, int count) {
  support::rng gen(2718);
  std::vector<int> mine;
  for (int sd = 0; sd < t.num_sds(); ++sd)
    if (own.owner(sd) == from) mine.push_back(sd);
  int moved = 0;
  while (moved < count && !mine.empty()) {
    const auto pick = static_cast<std::size_t>(gen.uniform_u64(0, mine.size() - 1));
    own.set_owner(mine[pick], to);
    mine.erase(mine.begin() + static_cast<std::ptrdiff_t>(pick));
    ++moved;
  }
  return moved;
}

int count_fragments(const dist::tiling& t, const dist::ownership_map& own) {
  int fragments = 0;
  for (int node = 0; node < own.num_nodes(); ++node) {
    const auto sds = own.sds_of(node);
    if (sds.empty()) continue;
    std::vector<char> seen(static_cast<std::size_t>(t.num_sds()), 0);
    int components = 0;
    for (int s : sds) {
      if (seen[static_cast<std::size_t>(s)]) continue;
      ++components;
      std::vector<int> stack{s};
      seen[static_cast<std::size_t>(s)] = 1;
      while (!stack.empty()) {
        const int u = stack.back();
        stack.pop_back();
        for (const auto& [d, nb] : t.neighbors(u))
          if (own.owner(nb) == node && !seen[static_cast<std::size_t>(nb)]) {
            seen[static_cast<std::size_t>(nb)] = 1;
            stack.push_back(nb);
          }
      }
    }
    fragments += components;
  }
  return fragments;
}

double ghost_bytes_per_step(const dist::tiling& t, const dist::ownership_map& own,
                            const dist::sim_cost_model& cost,
                            const dist::sim_cluster_config& cluster) {
  // Step 0 consumes the initial state and sends nothing; a 2-step run's
  // traffic is exactly one steady-state step's ghost volume.
  return dist::simulate_timestepping(t, own, 2, cost, cluster).network_bytes;
}

}  // namespace

int main() {
  using namespace nlh;
  const dist::tiling t(10, 10, 50, 8);
  const int nodes = 4;
  const double sec_per_dp = bench::measure_seconds_per_dp(8);
  const auto cost = bench::dp_cost_model();

  // ---------------- (a) balancing on vs off, 1:1:2:4 cluster -------------
  std::cout << "Ablation (a) — balancer ON vs OFF on a 1:1:2:4 cluster "
               "(10x10 SDs of 50x50)\n\n";
  auto cluster = bench::skylake_cluster(1, sec_per_dp);
  const double base = 1.0 / sec_per_dp;
  cluster.node_capacity =
      model::heterogeneous_cluster({base, base, 2 * base, 4 * base});

  auto own_off = bench::block_ownership(t, nodes);
  const auto res_off = dist::simulate_timestepping(t, own_off, 20, cost, cluster);

  auto own_on = bench::block_ownership(t, nodes);
  balance::sim_balance_config bcfg;
  bcfg.cost = cost;
  bcfg.cluster = cluster;
  bcfg.steps_per_iteration = 4;
  bcfg.max_iterations = 8;
  bcfg.cov_tol = 0.05;
  balance::run_sim_balancing(t, own_on, bcfg);
  const auto res_on = dist::simulate_timestepping(t, own_on, 20, cost, cluster);

  support::table ta({"config", "makespan s", "busy-cov", "speedup"});
  const double cov_off = support::imbalance_cov(res_off.node_busy_fraction);
  const double cov_on = support::imbalance_cov(res_on.node_busy_fraction);
  ta.row().add("static block partition").add(res_off.makespan, 4).add(cov_off, 3).add(1.0, 3);
  ta.row().add("after Algorithm 1").add(res_on.makespan, 4).add(cov_on, 3).add(
      res_off.makespan / res_on.makespan, 3);
  ta.print(std::cout);

  // ---------------- (b) frontier transfer vs naive transfer --------------
  std::cout << "\nAblation (b) — contiguity-preserving frontier transfer vs "
               "naive SD transfer\n(move 20 SDs from node 0 to node 3)\n\n";
  auto cluster_uni = bench::skylake_cluster(1, sec_per_dp);
  bench::set_uniform_speed(cluster_uni, nodes, sec_per_dp);

  auto own_frontier = bench::block_ownership(t, nodes);
  balance::transfer_sds(t, own_frontier, 0, 3, 20);
  auto own_naive = bench::block_ownership(t, nodes);
  naive_transfer(t, own_naive, 0, 3, 20);

  support::table tb({"transfer", "SP fragments", "ghost MiB/step"});
  tb.row()
      .add("frontier (paper)")
      .add(count_fragments(t, own_frontier))
      .add(ghost_bytes_per_step(t, own_frontier, cost, cluster_uni) / (1024 * 1024), 4);
  tb.row()
      .add("naive (random pick)")
      .add(count_fragments(t, own_naive))
      .add(ghost_bytes_per_step(t, own_naive, cost, cluster_uni) / (1024 * 1024), 4);
  tb.print(std::cout);
  std::cout << "\nTakeaway: Algorithm 1 equalizes busy time on heterogeneous "
               "nodes, and the paper's\nuniform frontier borrowing keeps SPs "
               "in one piece with markedly less ghost traffic\nthan naive SD "
               "reassignment.\n";
  return 0;
}

///
/// \file micro_obs.cpp
/// \brief google-benchmark microbenchmarks of the observability layer — the
/// per-event cost of spans/instants (enabled and disabled) and of histogram
/// recording — plus a self-contained guard pass that steps one distributed
/// solver with tracing off and on and writes BENCH_obs.json.
///
/// The guard is the regression fence for the "low-overhead tracing" claim
/// (docs/observability.md): the process exits non-zero when the traced
/// per-step time exceeds the untraced one by more than 5%. Measurements are
/// best-of-reps with the two modes interleaved, so scheduler noise and
/// thermal drift hit both sides alike. Set NLH_BENCH_OBS_JSON to redirect
/// the report (default: ./BENCH_obs.json).
///

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "dist/dist_solver.hpp"
#include "dist/ownership.hpp"
#include "obs/config.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "support/stopwatch.hpp"

namespace obs = nlh::obs;
namespace dist = nlh::dist;

static void BM_ObsSpanDisabled(benchmark::State& state) {
  obs::set_tracing_enabled(false);
  for (auto _ : state) {
    NLH_TRACE_SPAN("bench/span");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ObsSpanDisabled);

static void BM_ObsSpanEnabled(benchmark::State& state) {
  obs::set_tracing_enabled(true);
  for (auto _ : state) {
    NLH_TRACE_SPAN("bench/span");
    benchmark::ClobberMemory();
  }
  obs::set_tracing_enabled(false);
  obs::tracer::instance().clear();
}
BENCHMARK(BM_ObsSpanEnabled);

static void BM_ObsInstantEnabled(benchmark::State& state) {
  obs::set_tracing_enabled(true);
  std::uint64_t i = 0;
  for (auto _ : state) {
    NLH_TRACE_INSTANT("bench/instant", i++);
    benchmark::ClobberMemory();
  }
  obs::set_tracing_enabled(false);
  obs::tracer::instance().clear();
}
BENCHMARK(BM_ObsInstantEnabled);

static void BM_ObsHistogramRecord(benchmark::State& state) {
  obs::histogram h;
  double v = 1e-6;
  for (auto _ : state) {
    h.record(v);
    v = v < 1.0 ? v * 1.1 : 1e-6;
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ObsHistogramRecord);

static void BM_ObsCounterAdd(benchmark::State& state) {
  obs::counter c;
  for (auto _ : state) {
    c.add(1);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ObsCounterAdd);

// -------------------------------------------------------------- guard pass --

namespace {

/// Per-step seconds over `steps` steps of `solver`.
double measure_steps(dist::dist_solver& solver, int steps) {
  nlh::support::stopwatch sw;
  solver.run(steps);
  return sw.elapsed_s() / steps;
}

/// Step one distributed solver with tracing off and on (interleaved,
/// best-of-reps) and write the guard JSON. Returns true when the traced
/// per-step time stays within `max_overhead` of the untraced one.
bool run_obs_guard(const char* path) {
  constexpr double max_overhead = 0.05;
  constexpr int reps = 5;
  constexpr int steps_per_rep = 20;

  // Realistic task granularity: 24x24-DP SDs keep each compute task in the
  // tens-of-microseconds range, so the per-event cost is amortized the way
  // it is in a production step (tiny 8x8 SDs would measure the tracer, not
  // the solver, and read 2-3x higher). One thread per locality avoids
  // oversubscription noise on small CI runners.
  dist::dist_config cfg;
  cfg.sd_rows = cfg.sd_cols = 8;
  cfg.sd_size = 24;
  cfg.epsilon_factor = 2;
  cfg.threads_per_locality = 1;
  const int nodes = 2;
  // Row-banded ownership: top half of the SD rows on locality 0, bottom on
  // locality 1, giving one full cross-locality frontier of ghost traffic.
  const dist::tiling t(cfg.sd_rows, cfg.sd_cols, cfg.sd_size, cfg.epsilon_factor);
  std::vector<int> owner(static_cast<std::size_t>(t.num_sds()));
  for (int sd = 0; sd < t.num_sds(); ++sd)
    owner[static_cast<std::size_t>(sd)] =
        (sd / cfg.sd_cols) < cfg.sd_rows / 2 ? 0 : 1;
  dist::dist_solver solver(cfg, dist::ownership_map(t, nodes, std::move(owner)));
  solver.set_initial_condition();

  obs::set_tracing_enabled(false);
  solver.run(10);  // warm-up: plan compile, buffer pools, pool spin-up

  // Each rep measures the two modes back to back (order alternating, so
  // drift cancels) and contributes one traced/untraced ratio; the gate
  // takes the *minimum* ratio — the least-disturbed pair. A load spike on
  // a shared CI runner inflates individual reps but would have to hit the
  // traced side of every pair to produce a false failure. Rings are
  // cleared between traced reps so every rep pays the same steady-state
  // (no-reallocation) recording cost.
  double untraced = 1e300, traced = 1e300, min_ratio = 1e300;
  for (int r = 0; r < reps; ++r) {
    double u, t;
    if (r % 2 == 0) {
      obs::set_tracing_enabled(false);
      u = measure_steps(solver, steps_per_rep);
      obs::tracer::instance().clear();
      obs::set_tracing_enabled(true);
      t = measure_steps(solver, steps_per_rep);
    } else {
      obs::tracer::instance().clear();
      obs::set_tracing_enabled(true);
      t = measure_steps(solver, steps_per_rep);
      obs::set_tracing_enabled(false);
      u = measure_steps(solver, steps_per_rep);
    }
    untraced = std::min(untraced, u);
    traced = std::min(traced, t);
    min_ratio = std::min(min_ratio, t / u);
  }
  obs::set_tracing_enabled(false);
  const double events_per_step =
      static_cast<double>(obs::tracer::instance().snapshot().size()) /
      steps_per_rep;
  obs::tracer::instance().clear();

  const double overhead = min_ratio - 1.0;
  const bool pass = overhead <= max_overhead;

  std::printf("\nobs guard (%dx%d SDs, sd_size %d, %d localities x %d threads, "
              "tracing %s):\n",
              cfg.sd_rows, cfg.sd_cols, cfg.sd_size, nodes,
              cfg.threads_per_locality,
              NLH_OBS_TRACING_COMPILED ? "compiled" : "compiled out");
  std::printf("  untraced %8.3f ms/step   traced %8.3f ms/step   overhead "
              "%+.2f%% (gate %.0f%%)   ~%.0f events/step\n",
              untraced * 1e3, traced * 1e3, overhead * 100.0,
              max_overhead * 100.0, events_per_step);

  std::FILE* fp = std::fopen(path, "w");
  if (!fp) {
    std::fprintf(stderr, "obs guard: cannot open %s\n", path);
    return false;
  }
  std::fprintf(fp,
               "{\n"
               "  \"bench\": \"micro_obs\",\n"
               "  \"tracing_compiled\": %s,\n"
               "  \"reps\": %d,\n"
               "  \"steps_per_rep\": %d,\n"
               "  \"untraced_ms_per_step\": %.4f,\n"
               "  \"traced_ms_per_step\": %.4f,\n"
               "  \"events_per_step\": %.1f,\n"
               "  \"overhead_fraction\": %.4f,\n"
               "  \"max_overhead_fraction\": %.2f,\n"
               "  \"pass\": %s\n"
               "}\n",
               NLH_OBS_TRACING_COMPILED ? "true" : "false", reps, steps_per_rep,
               untraced * 1e3, traced * 1e3, events_per_step, overhead,
               max_overhead, pass ? "true" : "false");
  std::fclose(fp);
  std::printf("  guard %s -> %s\n", pass ? "PASS" : "FAIL", path);
  return pass;
}

}  // namespace

/// Custom main (this target links plain benchmark::benchmark, not
/// benchmark_main): the usual google-benchmark run, then the guard pass.
/// The guard is skipped when a --benchmark_filter excludes the obs
/// benchmarks, so filtered runs keep their exit code without paying the
/// measurement pass.
int main(int argc, char** argv) {
  bool guard_wanted = true;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    const std::string prefix = "--benchmark_filter=";
    if (arg.rfind(prefix, 0) == 0) {
      const std::string filter = arg.substr(prefix.size());
      guard_wanted = filter.empty() || filter == "all" || filter == ".*" ||
                     filter.find("Obs") != std::string::npos;
    }
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!guard_wanted) return 0;
  const char* path = std::getenv("NLH_BENCH_OBS_JSON");
  return run_obs_guard(path ? path : "BENCH_obs.json") ? 0 : 1;
}

#pragma once
///
/// \file bench_common.hpp
/// \brief Shared pieces of the figure benches: kernel calibration (turning
/// real measured DP-update cost into simulator work units), standard cluster
/// parameters, and tiling/ownership helpers.
///

#include <iostream>

#include "dist/ownership.hpp"
#include "dist/sim_dist.hpp"
#include "dist/tiling.hpp"
#include "nonlocal/grid2d.hpp"
#include "nonlocal/influence.hpp"
#include "nonlocal/nonlocal_operator.hpp"
#include "nonlocal/stencil.hpp"
#include "partition/mesh_dual.hpp"
#include "partition/multilevel.hpp"
#include "partition/partitioner.hpp"
#include "support/stopwatch.hpp"

namespace nlh::bench {

/// Measure the real wall-clock cost of one DP update (one eq.-5 right-hand
/// side evaluation including the full epsilon-ball loop) on this machine,
/// for the given horizon factor. Used to set the virtual node speed so the
/// simulator's absolute times are grounded in measured kernel cost.
inline double measure_seconds_per_dp(int eps_factor, int block = 50) {
  const int n = block;
  nonlocal::grid2d grid(n, static_cast<double>(eps_factor) / n);
  nonlocal::influence J;
  nonlocal::stencil st(grid, J);
  // Compiled plan + default backend — the same path the solvers run, so the
  // virtual node speed tracks the vectorized kernel, not the scalar baseline.
  nonlocal::stencil_plan plan(st);
  auto u = grid.make_field();
  auto out = grid.make_field();
  for (std::size_t i = 0; i < u.size(); ++i) u[i] = 1e-3 * static_cast<double>(i % 97);
  const nonlocal::dp_rect all{0, n, 0, n};
  // Warm-up, then timed repetitions.
  nonlocal::apply_nonlocal_operator(grid, plan, 1.0, u, out, all);
  const int reps = 5;
  support::stopwatch sw;
  for (int r = 0; r < reps; ++r)
    nonlocal::apply_nonlocal_operator(grid, plan, 1.0, u, out, all);
  const double total_dp = static_cast<double>(reps) * n * n;
  return sw.elapsed_s() / total_dp;
}

/// Cluster defaults modeled on the paper's testbed class (Intel Skylake
/// nodes on a fast interconnect): ~1 us latency, ~1.25 GB/s effective
/// per-link bandwidth.
inline dist::sim_cluster_config skylake_cluster(int cores_per_node,
                                                double seconds_per_dp) {
  dist::sim_cluster_config c;
  c.cores_per_node = cores_per_node;
  c.net.latency_s = 2e-6;
  c.net.bandwidth_bytes_per_s = 1.25e9;
  // Node speed in work units (DP updates) per second.
  (void)seconds_per_dp;
  return c;
}

/// Cost model in DP-update work units with real byte volumes.
inline dist::sim_cost_model dp_cost_model() {
  dist::sim_cost_model m;
  m.work_per_dp = 1.0;
  m.bytes_per_dp = 8.0;
  return m;
}

/// Uniform node speeds from the measured kernel cost.
inline void set_uniform_speed(dist::sim_cluster_config& c, int nodes,
                              double seconds_per_dp) {
  c.node_capacity.assign(static_cast<std::size_t>(nodes),
                         sim::capacity_trace::constant(1.0 / seconds_per_dp));
}

/// METIS-style ownership via the multilevel partitioner on the SD dual graph.
inline dist::ownership_map metis_ownership(const dist::tiling& t, int nodes,
                                           unsigned seed = 12345) {
  if (nodes == 1) return dist::ownership_map::single_node(t);
  partition::mesh_dual_options mopt;
  mopt.sd_rows = t.sd_rows();
  mopt.sd_cols = t.sd_cols();
  mopt.sd_size = t.sd_size();
  mopt.ghost_width = t.ghost();
  auto dual = partition::build_mesh_dual(mopt);
  partition::partition_options popt;
  popt.k = nodes;
  popt.seed = seed;
  const auto part = partition::multilevel_partition(dual, popt);
  return dist::ownership_map::from_partition(t, nodes, part);
}

/// Paper-style block halves/quadrants ownership (§8.3's explicit layout).
inline dist::ownership_map block_ownership(const dist::tiling& t, int nodes) {
  const auto part = partition::block_partition(t.sd_rows(), t.sd_cols(), nodes);
  return dist::ownership_map::from_partition(t, nodes, part);
}

}  // namespace nlh::bench

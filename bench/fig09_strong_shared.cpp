///
/// \file fig09_strong_shared.cpp
/// \brief Reproduces paper Fig. 9: strong scaling of the asynchronous
/// shared-memory solver. Fixed 400x400 mesh, epsilon = 8h, 20 timesteps;
/// the mesh is split into 1x1 / 2x2 / 4x4 / 8x8 SDs and executed on 1, 2
/// and 4 CPUs. Speedup baseline is the 1-CPU run of the same decomposition.
///
/// Per DESIGN.md, CPUs are virtual: per-SD task costs are calibrated from
/// the real measured kernel and the task DAG is scheduled in virtual time
/// (this host has one physical core).
///

#include <iostream>

#include "bench_common.hpp"
#include "support/table.hpp"

int main() {
  using namespace nlh;
  const int mesh = 400;
  const int eps_factor = 8;
  const int steps = 20;
  const double sec_per_dp = bench::measure_seconds_per_dp(eps_factor);

  std::cout << "Fig. 9 — strong scaling, shared memory (asynchronous)\n"
            << "mesh 400x400, epsilon = 8h, 20 steps; calibrated kernel: "
            << sec_per_dp * 1e9 << " ns/DP-update\n\n";

  support::table tab({"#SDs", "SD size", "T(1CPU) s", "speedup 1CPU",
                      "speedup 2CPU", "speedup 4CPU"});
  for (int grid : {1, 2, 4, 8}) {
    const int sd_size = mesh / grid;
    const dist::tiling t(grid, grid, sd_size, eps_factor);
    const auto own = dist::ownership_map::single_node(t);
    const auto cost = bench::dp_cost_model();

    double t1 = 0.0;
    std::vector<double> speedups;
    for (int cpus : {1, 2, 4}) {
      auto cluster = bench::skylake_cluster(cpus, sec_per_dp);
      bench::set_uniform_speed(cluster, 1, sec_per_dp);
      const auto res = dist::simulate_timestepping(t, own, steps, cost, cluster);
      if (cpus == 1) t1 = res.makespan;
      speedups.push_back(t1 / res.makespan);
    }
    tab.row()
        .add(grid * grid)
        .add(std::to_string(sd_size) + "x" + std::to_string(sd_size))
        .add(t1, 4)
        .add(speedups[0], 3)
        .add(speedups[1], 3)
        .add(speedups[2], 3);
  }
  tab.print(std::cout);
  std::cout
      << "\nPaper shape: one SD cannot scale (speedup 1 everywhere); with "
         "enough SDs the\nspeedup approaches the CPU count — linear "
         "dependence on the number of CPUs.\n";
  return 0;
}

///
/// \file fig10_weak_shared.cpp
/// \brief Reproduces paper Fig. 10: weak scaling of the asynchronous
/// shared-memory solver. SD size fixed at 50x50 DPs; the SD grid grows
/// n x n for n = 1..8 (total mesh 50n x 50n), epsilon = 8h, 20 steps,
/// on 1 / 2 / 4 CPUs. The baseline for each problem size is its 1-CPU run.
///

#include <iostream>

#include "bench_common.hpp"
#include "support/table.hpp"

int main() {
  using namespace nlh;
  const int sd_size = 50;
  const int eps_factor = 8;
  const int steps = 20;
  const double sec_per_dp = bench::measure_seconds_per_dp(eps_factor);

  std::cout << "Fig. 10 — weak scaling, shared memory (asynchronous)\n"
            << "SD size 50x50, n x n SDs (mesh 50n x 50n), epsilon = 8h, 20 "
               "steps; kernel: "
            << sec_per_dp * 1e9 << " ns/DP-update\n\n";

  support::table tab({"#SDs", "mesh", "T(1CPU) s", "speedup 1CPU",
                      "speedup 2CPU", "speedup 4CPU"});
  for (int n = 1; n <= 8; ++n) {
    const dist::tiling t(n, n, sd_size, eps_factor);
    const auto own = dist::ownership_map::single_node(t);
    const auto cost = bench::dp_cost_model();
    double t1 = 0.0;
    std::vector<double> speedups;
    for (int cpus : {1, 2, 4}) {
      auto cluster = bench::skylake_cluster(cpus, sec_per_dp);
      bench::set_uniform_speed(cluster, 1, sec_per_dp);
      const auto res = dist::simulate_timestepping(t, own, steps, cost, cluster);
      if (cpus == 1) t1 = res.makespan;
      speedups.push_back(t1 / res.makespan);
    }
    const int mesh = n * sd_size;
    tab.row()
        .add(n * n)
        .add(std::to_string(mesh) + "x" + std::to_string(mesh))
        .add(t1, 4)
        .add(speedups[0], 3)
        .add(speedups[1], 3)
        .add(speedups[2], 3);
  }
  tab.print(std::cout);
  std::cout << "\nPaper shape: execution time grows linearly with problem "
               "size on every CPU count;\nspeedup saturates at the CPU count "
               "once there are enough SDs to fill the cores.\n";
  return 0;
}

///
/// \file micro_partition.cpp
/// \brief Microbenchmarks of the multilevel partitioner and the paper's
/// observation that partitioning the coarse SD grid (instead of the fine
/// mesh) keeps METIS-style partitioning cheap.
///

#include <benchmark/benchmark.h>

#include "partition/mesh_dual.hpp"
#include "partition/metrics.hpp"
#include "partition/multilevel.hpp"

namespace part = nlh::partition;

static part::graph dual_for(int grid) {
  part::mesh_dual_options opt;
  opt.sd_rows = grid;
  opt.sd_cols = grid;
  opt.sd_size = 50;
  opt.ghost_width = 8;
  return part::build_mesh_dual(opt);
}

static void BM_MultilevelVsGridSize(benchmark::State& state) {
  const int grid = static_cast<int>(state.range(0));
  const auto g = dual_for(grid);
  part::partition_options opt;
  opt.k = 8;
  for (auto _ : state) {
    auto p = part::multilevel_partition(g, opt);
    benchmark::DoNotOptimize(p.data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
  state.counters["vertices"] = static_cast<double>(g.num_vertices());
}
BENCHMARK(BM_MultilevelVsGridSize)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

static void BM_MultilevelVsK(benchmark::State& state) {
  const auto g = dual_for(16);
  part::partition_options opt;
  opt.k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto p = part::multilevel_partition(g, opt);
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_MultilevelVsK)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

static void BM_DualGraphBuild(benchmark::State& state) {
  const int grid = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto g = dual_for(grid);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_DualGraphBuild)->Arg(16)->Arg(64);

static void BM_EdgeCutMetric(benchmark::State& state) {
  const auto g = dual_for(32);
  part::partition_options opt;
  opt.k = 8;
  const auto p = part::multilevel_partition(g, opt);
  for (auto _ : state) benchmark::DoNotOptimize(part::edge_cut(g, p));
}
BENCHMARK(BM_EdgeCutMetric);

///
/// \file micro_ghost.cpp
/// \brief Microbenchmarks of the ghost-exchange path: strip pack/unpack,
/// serialization, and the full mailbox round trip.
///

#include <benchmark/benchmark.h>

#include "dist/sd_block.hpp"
#include "dist/tiling.hpp"
#include "net/comm_world.hpp"
#include "net/serializer.hpp"

namespace dist = nlh::dist;
namespace net = nlh::net;

static void BM_StripPack(benchmark::State& state) {
  const int sd_size = static_cast<int>(state.range(0));
  const int ghost = 8;
  dist::tiling t(2, 2, sd_size, ghost);
  dist::sd_block b(t, 0);
  for (int i = 0; i < sd_size; ++i)
    for (int j = 0; j < sd_size; ++j) b.u()[b.flat(i, j)] = i + j;
  for (auto _ : state) {
    auto strip = b.pack(t, dist::direction::east);
    benchmark::DoNotOptimize(strip.data());
  }
  state.SetBytesProcessed(state.iterations() * sd_size * ghost * 8);
}
BENCHMARK(BM_StripPack)->Arg(16)->Arg(50)->Arg(100)->Arg(200);

static void BM_StripPackPooled(benchmark::State& state) {
  // pack_into reuses the scratch vector's capacity: past the first
  // iteration the pack path performs zero allocations (the ghost-strip
  // pooling the dist_solver exchange uses) — compare against BM_StripPack.
  const int sd_size = static_cast<int>(state.range(0));
  const int ghost = 8;
  dist::tiling t(2, 2, sd_size, ghost);
  dist::sd_block b(t, 0);
  for (int i = 0; i < sd_size; ++i)
    for (int j = 0; j < sd_size; ++j) b.u()[b.flat(i, j)] = i + j;
  std::vector<double> strip;
  for (auto _ : state) {
    b.pack_into(t, dist::direction::east, strip);
    benchmark::DoNotOptimize(strip.data());
  }
  state.SetBytesProcessed(state.iterations() * sd_size * ghost * 8);
}
BENCHMARK(BM_StripPackPooled)->Arg(16)->Arg(50)->Arg(100)->Arg(200);

static void BM_StripUnpack(benchmark::State& state) {
  const int sd_size = static_cast<int>(state.range(0));
  const int ghost = 8;
  dist::tiling t(2, 2, sd_size, ghost);
  dist::sd_block a(t, 0), b(t, 1);
  const auto strip = a.pack(t, dist::direction::east);
  for (auto _ : state) {
    b.unpack(t, dist::direction::west, strip);
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(state.iterations() * sd_size * ghost * 8);
}
BENCHMARK(BM_StripUnpack)->Arg(16)->Arg(50)->Arg(100)->Arg(200);

static void BM_LocalFillVsSerializedPath(benchmark::State& state) {
  const int sd_size = 50;
  dist::tiling t(1, 2, sd_size, 8);
  dist::sd_block a(t, 0), b(t, 1);
  const bool direct = state.range(0) == 1;
  for (auto _ : state) {
    if (direct) {
      b.fill_from_local(t, dist::direction::west, a);
    } else {
      net::archive_writer w;
      w.write(a.pack(t, dist::direction::east));
      const auto buf = w.take();
      net::archive_reader r(buf);
      b.unpack(t, dist::direction::west, r.read_vector<double>());
    }
    benchmark::ClobberMemory();
  }
  state.SetLabel(direct ? "direct collar copy" : "pack+serialize+unpack");
}
BENCHMARK(BM_LocalFillVsSerializedPath)->Arg(1)->Arg(0);

static void BM_SerializedExchangeAllocVsPooled(benchmark::State& state) {
  // The full serialized exchange (pack -> archive -> unpack), fresh
  // allocations per message (Arg 0, the pre-pooling dist_solver path)
  // versus the pooled path (Arg 1): strip scratch reused on both ends and
  // the serialized byte buffer recirculated the way the receive side
  // releases it back to the senders. The delta is pure allocator traffic —
  // the ROADMAP ghost-strip-pooling item made measurable.
  const int sd_size = 50;
  dist::tiling t(1, 2, sd_size, 8);
  dist::sd_block a(t, 0), b(t, 1);
  const bool pooled = state.range(0) == 1;
  std::vector<double> pack_scratch, unpack_scratch;
  net::byte_buffer recycled;
  for (auto _ : state) {
    if (pooled) {
      a.pack_into(t, dist::direction::east, pack_scratch);
      net::archive_writer w(std::move(recycled));
      w.write(pack_scratch);
      auto buf = w.take();
      net::archive_reader r(buf);
      r.read_vector_into(unpack_scratch);
      b.unpack(t, dist::direction::west, unpack_scratch);
      recycled = std::move(buf);  // back to the pool
    } else {
      net::archive_writer w;
      w.write(a.pack(t, dist::direction::east));
      const auto buf = w.take();
      net::archive_reader r(buf);
      b.unpack(t, dist::direction::west, r.read_vector<double>());
    }
    benchmark::ClobberMemory();
  }
  state.SetLabel(pooled ? "pooled buffers" : "fresh allocations");
  state.SetBytesProcessed(state.iterations() * sd_size * 8 * 8);
}
BENCHMARK(BM_SerializedExchangeAllocVsPooled)->Arg(0)->Arg(1);

static void BM_MailboxRoundTrip(benchmark::State& state) {
  net::comm_world world(2);
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  std::uint64_t tag = 0;
  for (auto _ : state) {
    net::byte_buffer payload(bytes);
    world.send(0, 1, tag, std::move(payload));
    auto got = world.recv(1, 0, tag).get();
    benchmark::DoNotOptimize(got.data());
    ++tag;
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_MailboxRoundTrip)->Arg(64)->Arg(3200)->Arg(65536);

///
/// \file micro_ghost.cpp
/// \brief Microbenchmarks of the ghost-exchange path: strip pack/unpack,
/// serialization, and the full mailbox round trip.
///

#include <benchmark/benchmark.h>

#include "dist/sd_block.hpp"
#include "dist/tiling.hpp"
#include "net/comm_world.hpp"
#include "net/serializer.hpp"

namespace dist = nlh::dist;
namespace net = nlh::net;

static void BM_StripPack(benchmark::State& state) {
  const int sd_size = static_cast<int>(state.range(0));
  const int ghost = 8;
  dist::tiling t(2, 2, sd_size, ghost);
  dist::sd_block b(t, 0);
  for (int i = 0; i < sd_size; ++i)
    for (int j = 0; j < sd_size; ++j) b.u()[b.flat(i, j)] = i + j;
  for (auto _ : state) {
    auto strip = b.pack(t, dist::direction::east);
    benchmark::DoNotOptimize(strip.data());
  }
  state.SetBytesProcessed(state.iterations() * sd_size * ghost * 8);
}
BENCHMARK(BM_StripPack)->Arg(16)->Arg(50)->Arg(100)->Arg(200);

static void BM_StripUnpack(benchmark::State& state) {
  const int sd_size = static_cast<int>(state.range(0));
  const int ghost = 8;
  dist::tiling t(2, 2, sd_size, ghost);
  dist::sd_block a(t, 0), b(t, 1);
  const auto strip = a.pack(t, dist::direction::east);
  for (auto _ : state) {
    b.unpack(t, dist::direction::west, strip);
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(state.iterations() * sd_size * ghost * 8);
}
BENCHMARK(BM_StripUnpack)->Arg(16)->Arg(50)->Arg(100)->Arg(200);

static void BM_LocalFillVsSerializedPath(benchmark::State& state) {
  const int sd_size = 50;
  dist::tiling t(1, 2, sd_size, 8);
  dist::sd_block a(t, 0), b(t, 1);
  const bool direct = state.range(0) == 1;
  for (auto _ : state) {
    if (direct) {
      b.fill_from_local(t, dist::direction::west, a);
    } else {
      net::archive_writer w;
      w.write(a.pack(t, dist::direction::east));
      const auto buf = w.take();
      net::archive_reader r(buf);
      b.unpack(t, dist::direction::west, r.read_vector<double>());
    }
    benchmark::ClobberMemory();
  }
  state.SetLabel(direct ? "direct collar copy" : "pack+serialize+unpack");
}
BENCHMARK(BM_LocalFillVsSerializedPath)->Arg(1)->Arg(0);

static void BM_MailboxRoundTrip(benchmark::State& state) {
  net::comm_world world(2);
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  std::uint64_t tag = 0;
  for (auto _ : state) {
    net::byte_buffer payload(bytes);
    world.send(0, 1, tag, std::move(payload));
    auto got = world.recv(1, 0, tag).get();
    benchmark::DoNotOptimize(got.data());
    ++tag;
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_MailboxRoundTrip)->Arg(64)->Arg(3200)->Arg(65536);

///
/// \file ablation_overlap.cpp
/// \brief Ablation for §6.3's core trick: how much exchange time does the
/// case-1/case-2 overlap hide? Two parts:
///
/// 1. The historical virtual-time sweep on the Fig. 13 configuration
///    (16x16 SDs, 8 nodes): asynchronous schedule vs a bulk-synchronous
///    runtime in the simulator.
/// 2. A **real-solver** guard: the actual dist_solver stepping under
///    injected wall-clock network latency (net::comm_world's delay model),
///    comparing the bulk_sync / coarse / per_direction schedules
///    head-to-head. Writes BENCH_overlap.json and exits non-zero unless
///    the per-direction schedule holds its gate: at the high-latency
///    points (1e-3 s, 1e-2 s) it must not lose to the coarse when_all
///    schedule, and it must never regress the bulk-synchronous baseline,
///    each within a noise tolerance. Set NLH_BENCH_OVERLAP_JSON to
///    redirect the report (default: ./BENCH_overlap.json).
///

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "dist/dist_solver.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace {

/// Deterministic per-message latency jitter in [0.6, 1.4) x base — spreads
/// the arrivals so per-direction chaining has something to exploit, the
/// way real interconnects stagger messages.
double jittered(double base, std::uint64_t tag) {
  const std::uint64_t h = (tag * 2654435761ull) >> 16;
  return base * (0.6 + 0.8 * static_cast<double>(h % 1024) / 1024.0);
}

struct real_run {
  double seconds = 0.0;
  std::uint64_t early_tasks = 0;
  double wait_seconds = 0.0;
};

/// Wall-clock seconds for `steps` real dist_solver steps under `sched` with
/// `latency` seconds of injected per-message delivery delay (0 = inline).
/// Best of `reps` repetitions, fresh solver each rep (cold plan compiled on
/// the warm-up step, so the measured loop runs the cached plan).
real_run run_real_solver(nlh::dist::overlap_schedule sched, double latency,
                         int steps, int reps) {
  using namespace nlh;
  real_run best;
  best.seconds = 1e100;
  for (int r = 0; r < reps; ++r) {
    dist::dist_config cfg;
    cfg.sd_rows = cfg.sd_cols = 4;
    cfg.sd_size = 48;
    cfg.epsilon_factor = 6;
    cfg.threads_per_locality = 1;
    cfg.schedule = sched;
    cfg.backend = nonlocal::kernel_backend::row_run;  // deterministic across hosts
    const dist::tiling t(4, 4, 48, 6);
    dist::dist_solver solver(cfg, bench::block_ownership(t, 4));
    solver.set_initial_condition();
    if (latency > 0.0)
      solver.comm().set_delay_model([latency](int, int, std::uint64_t tag) {
        return jittered(latency, tag);
      });

    solver.step();  // warm-up: plan compile, pool spin-up, buffer pools
    const auto s0 = solver.stats();
    support::stopwatch sw;
    solver.run(steps);
    const double elapsed = sw.elapsed_s();
    const auto s1 = solver.stats();
    if (elapsed < best.seconds) {
      best.seconds = elapsed;
      best.early_tasks = (s1.interior_early + s1.strips_early) -
                         (s0.interior_early + s0.strips_early);
      best.wait_seconds = s1.wait_seconds - s0.wait_seconds;
    }
  }
  return best;
}

}  // namespace

int main() {
  using namespace nlh;

  // ---- Part 1: the historical virtual-time ablation --------------------
  const dist::tiling t(16, 16, 50, 8);
  const int nodes = 8;
  const int steps = 20;
  const double sec_per_dp = bench::measure_seconds_per_dp(8);
  const auto own = bench::metis_ownership(t, nodes);

  std::cout << "Ablation — communication hiding (case-2-first overlap) vs "
               "bulk-synchronous execution\n"
            << "800x800 mesh, 16x16 SDs, 8 nodes, 20 steps; kernel: "
            << sec_per_dp * 1e9 << " ns/DP-update\n\n";

  support::table tab({"latency", "overlap makespan s", "bulk-sync makespan s",
                      "overlap wins by"});
  for (double latency : {2e-6, 1e-4, 1e-3, 1e-2}) {
    auto cluster = bench::skylake_cluster(1, sec_per_dp);
    bench::set_uniform_speed(cluster, nodes, sec_per_dp);
    cluster.net.latency_s = latency;

    auto cost = bench::dp_cost_model();
    cost.overlap = true;
    const auto on = dist::simulate_timestepping(t, own, steps, cost, cluster);
    cost.overlap = false;
    const auto off = dist::simulate_timestepping(t, own, steps, cost, cluster);

    tab.row()
        .add(support::fmt_double(latency * 1e6, 3) + " us")
        .add(on.makespan, 4)
        .add(off.makespan, 4)
        .add(support::fmt_double((off.makespan / on.makespan - 1.0) * 100.0, 3) + " %");
  }
  tab.print(std::cout);

  // ---- Part 2: real-solver schedule guard ------------------------------
  std::cout << "\nReal-solver schedule comparison (4x4 SDs of 48x48 DPs, "
               "ghost 6, 4 localities,\nrow_run kernel, jittered injected "
               "latency; best of 3 x 8 steps):\n\n";

  struct point {
    double latency;
    real_run bulk, coarse, perdir;
  };
  std::vector<point> points;
  for (double latency : {0.0, 1e-3, 1e-2}) {
    const int msteps = latency >= 1e-2 ? 6 : 8;
    point p;
    p.latency = latency;
    p.bulk = run_real_solver(dist::overlap_schedule::bulk_sync, latency, msteps, 3);
    p.coarse = run_real_solver(dist::overlap_schedule::coarse, latency, msteps, 3);
    p.perdir =
        run_real_solver(dist::overlap_schedule::per_direction, latency, msteps, 3);
    // Normalize to per-step seconds so the points are comparable.
    p.bulk.seconds /= msteps;
    p.coarse.seconds /= msteps;
    p.perdir.seconds /= msteps;
    points.push_back(p);
  }

  support::table rtab({"latency", "bulk_sync s/step", "coarse s/step",
                       "per_direction s/step", "pd vs coarse", "pd vs bulk"});
  for (const auto& p : points)
    rtab.row()
        .add(support::fmt_double(p.latency * 1e3, 3) + " ms")
        .add(p.bulk.seconds, 6)
        .add(p.coarse.seconds, 6)
        .add(p.perdir.seconds, 6)
        .add(support::fmt_double(p.coarse.seconds / p.perdir.seconds, 3) + "x")
        .add(support::fmt_double(p.bulk.seconds / p.perdir.seconds, 3) + "x");
  rtab.print(std::cout);

  // Gate: per_direction must hold coarse at the high-latency points and
  // never regress bulk_sync. Tolerances are sized for shared CI runners
  // (oversubscribed vCPUs, best-of-3 over a handful of steps): 10% at the
  // latency points, where the schedules genuinely separate (pd beats
  // bulk_sync by 14-22% on an idle machine); 25% at zero latency, where
  // the whole step is sub-10ms of pure task overhead and the comparison
  // measures scheduler noise, not communication hiding.
  constexpr double tol = 1.10;
  constexpr double tol_zero = 1.25;
  bool pass = true;
  std::string rows;
  for (const auto& p : points) {
    const bool high_latency = p.latency >= 1e-3;
    const bool beats_coarse = p.perdir.seconds <= p.coarse.seconds * tol;
    const bool beats_bulk =
        p.perdir.seconds <= p.bulk.seconds * (high_latency ? tol : tol_zero);
    if (high_latency && !beats_coarse) pass = false;
    if (!beats_bulk) pass = false;

    char row[512];
    std::snprintf(row, sizeof(row),
                  "    {\"latency_s\": %g, \"bulk_sync_s_per_step\": %.6f, "
                  "\"coarse_s_per_step\": %.6f, \"per_direction_s_per_step\": "
                  "%.6f, \"pd_vs_coarse\": %.3f, \"pd_vs_bulk\": %.3f, "
                  "\"pd_early_tasks\": %llu, \"pd_wait_seconds\": %.4f}",
                  p.latency, p.bulk.seconds, p.coarse.seconds, p.perdir.seconds,
                  p.coarse.seconds / p.perdir.seconds,
                  p.bulk.seconds / p.perdir.seconds,
                  static_cast<unsigned long long>(p.perdir.early_tasks),
                  p.perdir.wait_seconds);
    if (!rows.empty()) rows += ",\n";
    rows += row;
  }

  const char* env = std::getenv("NLH_BENCH_OVERLAP_JSON");
  const char* path = env ? env : "BENCH_overlap.json";
  std::FILE* fp = std::fopen(path, "w");
  if (!fp) {
    std::fprintf(stderr, "overlap guard: cannot open %s\n", path);
    return 1;
  }
  std::fprintf(fp,
               "{\n"
               "  \"bench\": \"ablation_overlap\",\n"
               "  \"config\": {\"sd_grid\": 4, \"sd_size\": 48, \"ghost\": 6, "
               "\"nodes\": 4, \"backend\": \"row_run\"},\n"
               "  \"gate\": \"per_direction <= coarse * %.2f and <= bulk_sync * "
               "%.2f at latency >= 1e-3; <= bulk_sync * 1.25 at zero latency\",\n"
               "  \"pass\": %s,\n"
               "  \"results\": [\n%s\n  ]\n"
               "}\n",
               tol, tol, pass ? "true" : "false", rows.c_str());
  std::fclose(fp);

  std::cout << "\nTakeaway: at realistic interconnect latencies the overlap "
               "fully hides the exchange;\nas latency grows, the "
               "bulk-synchronous schedule pays it on the critical path every "
               "step\nwhile the asynchronous schedules keep computing — and "
               "the per-direction schedule\nstarts each boundary strip the "
               "moment its own ghost lands (paper §6.3, docs/overlap.md).\n"
            << "\n  guard " << (pass ? "PASS" : "FAIL") << " -> " << path << "\n";
  return pass ? 0 : 1;
}

///
/// \file ablation_overlap.cpp
/// \brief Ablation for §6.3's core trick: how much exchange time does the
/// case-1/case-2 overlap hide? Sweeps network latency on the Fig. 13
/// configuration (16x16 SDs, 8 nodes) comparing the asynchronous schedule
/// against a bulk-synchronous runtime that waits for every ghost before
/// computing.
///

#include <iostream>

#include "bench_common.hpp"
#include "support/table.hpp"

int main() {
  using namespace nlh;
  const dist::tiling t(16, 16, 50, 8);
  const int nodes = 8;
  const int steps = 20;
  const double sec_per_dp = bench::measure_seconds_per_dp(8);
  const auto own = bench::metis_ownership(t, nodes);

  std::cout << "Ablation — communication hiding (case-2-first overlap) vs "
               "bulk-synchronous execution\n"
            << "800x800 mesh, 16x16 SDs, 8 nodes, 20 steps; kernel: "
            << sec_per_dp * 1e9 << " ns/DP-update\n\n";

  support::table tab({"latency", "overlap makespan s", "bulk-sync makespan s",
                      "overlap wins by"});
  for (double latency : {2e-6, 1e-4, 1e-3, 1e-2}) {
    auto cluster = bench::skylake_cluster(1, sec_per_dp);
    bench::set_uniform_speed(cluster, nodes, sec_per_dp);
    cluster.net.latency_s = latency;

    auto cost = bench::dp_cost_model();
    cost.overlap = true;
    const auto on = dist::simulate_timestepping(t, own, steps, cost, cluster);
    cost.overlap = false;
    const auto off = dist::simulate_timestepping(t, own, steps, cost, cluster);

    tab.row()
        .add(support::fmt_double(latency * 1e6, 3) + " us")
        .add(on.makespan, 4)
        .add(off.makespan, 4)
        .add(support::fmt_double((off.makespan / on.makespan - 1.0) * 100.0, 3) + " %");
  }
  tab.print(std::cout);
  std::cout << "\nTakeaway: at realistic interconnect latencies the overlap "
               "fully hides the exchange;\nas latency grows, the "
               "bulk-synchronous schedule pays it on the critical path every "
               "step\nwhile the asynchronous schedule keeps computing case-2 "
               "DPs (paper §6.3).\n";
  return 0;
}

///
/// \file fig14_load_balance.cpp
/// \brief Reproduces paper Fig. 14: validation of the load balancing
/// algorithm. 5x5 SDs on 4 symmetric nodes starting from a highly
/// imbalanced assignment (node 0 owns almost everything); Algorithm 1 must
/// reach a nearly balanced distribution within 3 iterations.
///

#include <iostream>

#include "balance/render.hpp"
#include "balance/sim_driver.hpp"
#include "bench_common.hpp"
#include "model/capacity.hpp"
#include "support/table.hpp"

int main() {
  using namespace nlh;
  const dist::tiling t(5, 5, 50, 8);

  // Fig. 14 (left): node 0 owns all but three corner SDs.
  std::vector<int> owner(25, 0);
  owner[static_cast<std::size_t>(t.sd_at(0, 4))] = 1;
  owner[static_cast<std::size_t>(t.sd_at(4, 0))] = 2;
  owner[static_cast<std::size_t>(t.sd_at(4, 4))] = 3;
  dist::ownership_map own(t, 4, owner);
  const auto start = own;

  std::cout << "Fig. 14 — load balancer validation: 5x5 SDs, 4 symmetric "
               "nodes, highly imbalanced start\n\nInitial ownership:\n"
            << balance::render_ownership(t, own) << "\n";

  balance::sim_balance_config cfg;
  cfg.steps_per_iteration = 4;
  cfg.max_iterations = 8;
  cfg.cov_tol = 0.08;
  cfg.cost = bench::dp_cost_model();
  cfg.cluster = bench::skylake_cluster(1, 1.0);
  cfg.cluster.node_capacity = model::uniform_cluster(4, 1.0);

  const auto log = balance::run_sim_balancing(t, own, cfg);

  support::table tab({"iter", "busy fractions", "busy-cov", "SDs moved",
                      "SD counts after"});
  int balancing_iterations = 0;
  for (const auto& e : log) {
    std::string busy, counts;
    for (std::size_t i = 0; i < e.busy_fraction.size(); ++i)
      busy += (i ? "/" : "") + support::fmt_double(e.busy_fraction[i], 2);
    for (std::size_t i = 0; i < e.sd_counts_after.size(); ++i)
      counts += (i ? "/" : "") + std::to_string(e.sd_counts_after[i]);
    tab.row().add(e.iteration).add(busy).add(e.busy_cov, 3).add(e.sds_moved).add(counts);
    balancing_iterations += e.sds_moved > 0 ? 1 : 0;
  }
  tab.print(std::cout);

  std::cout << "\nOwnership before -> after:\n"
            << balance::render_side_by_side(t, start, own) << "\n";

  const auto counts = own.sd_counts();
  bool balanced = true;
  for (int c : counts) balanced = balanced && c >= 5 && c <= 8;
  const bool within_three = balancing_iterations <= 3;
  std::cout << "Paper expectation: nearly balanced within 3 iterations.\n"
            << "Reproduced: balanced=" << (balanced ? "YES" : "NO")
            << ", balancing iterations=" << balancing_iterations << " ("
            << (within_three ? "<= 3" : "> 3") << ")\n";
  return (balanced && within_three) ? 0 : 1;
}
